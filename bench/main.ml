(* Bench harness: regenerates every table and figure of the paper from the
   simulation (printed in a stable textual form; see EXPERIMENTS.md for the
   paper-vs-measured record), then runs Bechamel micro-benchmarks of the
   simulator's hot data structures — one group per reproduced result, so
   both the reproduction and the implementation's own performance are
   exercised by `dune exec bench/main.exe`.

   Every mode except `list` additionally writes the whole run — experiment
   tables/figures, micro-benchmark estimates and a final metrics snapshot —
   as a machine-readable BENCH.json (path overridable with
   OSIRIS_BENCH_JSON).

   Usage:
     dune exec bench/main.exe            # everything (slow: full figures)
     dune exec bench/main.exe quick      # tables + ablations only
     dune exec bench/main.exe <id>       # one experiment (see `list`)
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks only
     dune exec bench/main.exe -- --list  # schema version + figure ids *)

open Bechamel
open Toolkit
module Registry = Osiris_experiments.Registry
module Report = Osiris_experiments.Report
module Json = Osiris_obs.Json

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths underneath each result.  *)

module Micro = struct
  module Desc_queue = Osiris_board.Desc_queue
  module Desc = Osiris_board.Desc
  module Sar = Osiris_atm.Sar
  module Cell = Osiris_atm.Cell
  module Engine = Osiris_sim.Engine
  module Process = Osiris_sim.Process

  (* table1 rests on engine event dispatch. *)
  let bench_engine =
    Test.make ~name:"table1:engine-event"
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           for _ = 1 to 64 do
             ignore (Engine.schedule eng ~delay:10 (fun () -> ()))
           done;
           Engine.run eng))

  (* the engine_speed figure rests on the scheduler itself: the same
     self-rescheduling timer spread, one test per backend, so the
     wheel-vs-heap gap is visible without the datapath around it. *)
  let bench_scheduler backend name =
    Test.make ~name
      (Staged.stage (fun () ->
           let eng = Engine.create ~backend () in
           let n = ref 0 in
           let rec tick d () =
             incr n;
             if !n < 4096 then ignore (Engine.schedule eng ~delay:d (tick d))
           in
           List.iter
             (fun d -> ignore (Engine.schedule eng ~delay:d (tick d)))
             [ 1; 3; 10; 123; 1_000; 50_000; 1_000_000; 30_000_000 ];
           Engine.run eng))

  let bench_wheel =
    bench_scheduler Engine.Timer_wheel "engine_speed:wheel-dispatch-4k"

  let bench_heap =
    bench_scheduler Engine.Binary_heap "engine_speed:heap-dispatch-4k"

  (* figures 2/3 rest on per-cell reassembly decisions. *)
  let bench_sar =
    let pdu = Bytes.make 4096 'x' in
    let cells = Array.of_list (Sar.segment ~vci:1 ~nlinks:4 pdu) in
    Test.make ~name:"figure2:sar-reassemble-4KB"
      (Staged.stage (fun () ->
           let sar = Sar.create (Sar.Per_link 4) ~max_cells:256 in
           Array.iter
             (fun (c : Cell.t) ->
               ignore (Sar.push sar ~link:(c.Cell.seq mod 4) c))
             cells))

  (* figure 4 rests on descriptor-queue operations. *)
  let bench_queue =
    Test.make ~name:"figure4:desc-queue-op"
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           let q =
             Desc_queue.create eng ~size:64
               ~direction:Desc_queue.Host_to_board
               ~locking:Desc_queue.Lock_free ~hooks:Desc_queue.free_hooks ()
           in
           Process.spawn eng ~name:"b" (fun () ->
               for i = 1 to 32 do
                 ignore
                   (Desc_queue.host_enqueue q
                      (Desc.v ~addr:(i * 4096) ~len:64 ()));
                 ignore (Desc_queue.board_dequeue q)
               done);
           Engine.run eng))

  (* the checksum/CRC paths behind the UDP-CS and §2.3 results. *)
  let bench_checksum =
    let b = Bytes.make 16384 'y' in
    Test.make ~name:"udp-cs:checksum-16KB"
      (Staged.stage (fun () ->
           ignore (Osiris_util.Checksum.compute b ~off:0 ~len:16384)))

  let bench_crc =
    let b = Bytes.make 16384 'z' in
    Test.make ~name:"sar:crc32-16KB"
      (Staged.stage (fun () ->
           ignore (Osiris_util.Crc32.compute b ~off:0 ~len:16384)))

  (* cell wire codec behind every link transfer. *)
  let bench_cell =
    let c =
      Cell.make ~vci:9 ~seq:3 ~eom:false ~last_of_pdu:false
        (Bytes.make Cell.data_size 'c')
    in
    Test.make ~name:"link:cell-serialize-parse"
      (Staged.stage (fun () ->
           match Cell.parse (Cell.serialize c) with
           | Ok _ -> ()
           | Error e -> failwith e))

  (* the fragmentation machinery behind 2.2 *)
  let bench_pbufs =
    let mem =
      Osiris_mem.Phys_mem.create
        ~scramble:(Osiris_util.Rng.create ~seed:1)
        ~size:(16 lsl 20) ~page_size:4096 ()
    in
    let vs = Osiris_mem.Vspace.create mem in
    let v = Osiris_mem.Vspace.alloc vs ~len:(16 * 1024) in
    Test.make ~name:"2.2:phys-buffers-16KB"
      (Staged.stage (fun () ->
           ignore (Osiris_mem.Vspace.phys_buffers vs ~vaddr:v ~len:(16 * 1024))))

  (* ip fragmentation images behind figures 2/3's generator *)
  let bench_ip_frag =
    let payload = Bytes.make 16384 'f' in
    Test.make ~name:"figure3:ip-fragment-16KB"
      (Staged.stage (fun () ->
           ignore
             (Osiris_proto.Ip.fragment_images Osiris_proto.Ip.default_config
                ~page_size:4096 ~src:1l ~dst:2l ~proto:17 payload)))

  let all =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [ bench_engine; bench_wheel; bench_heap; bench_sar; bench_queue;
        bench_checksum; bench_crc; bench_cell; bench_pbufs; bench_ip_frag ]

  (* Print the estimates and return them as [(name, ns_per_run)]. *)
  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances all in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Printf.printf "\n%s\nBechamel micro-benchmarks (monotonic clock)\n%s\n"
      (String.make 72 '-') (String.make 72 '-');
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
    |> List.map (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some (t :: _) ->
               Printf.printf "%-40s %12.1f ns/run\n" name t;
               (name, Some t)
           | _ ->
               Printf.printf "%-40s %12s\n" name "n/a";
               (name, None))
end

(* Run, print, and collect each experiment's result for BENCH.json. *)
let run_reproduction entries =
  List.map
    (fun (e : Registry.entry) ->
      Printf.printf "\n### %s — %s\n%!" e.Registry.id e.Registry.description;
      let r = Registry.eval e in
      Registry.print_result r;
      (e.Registry.id, e.Registry.description, Registry.result_json r))
    entries

let write_bench_json ~mode ~experiments ~micro =
  let path =
    match Sys.getenv_opt "OSIRIS_BENCH_JSON" with
    | Some p when p <> "" -> p
    | _ -> "BENCH.json"
  in
  let doc = Report.bench_json ~mode ~experiments ~micro in
  match open_out path with
  | oc ->
      Json.to_channel oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n" path
  | exception Sys_error e ->
      Printf.eprintf "cannot write BENCH.json: %s\n" e;
      exit 1

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "--list" ->
      (* machine-oriented variant of `list`: leads with the BENCH.json
         schema tag so CI can pin against it, then one line per entry. *)
      Printf.printf "schema %s\n" Report.schema;
      List.iter
        (fun (e : Registry.entry) ->
          Printf.printf "%-24s %s\n" e.Registry.id e.Registry.description)
        Registry.all
  | "list" ->
      List.iter
        (fun (e : Registry.entry) ->
          Printf.printf "%-24s %s\n" e.Registry.id e.Registry.description)
        Registry.all
  | "micro" ->
      let micro = Micro.run () in
      write_bench_json ~mode ~experiments:[] ~micro
  | "quick" ->
      let experiments = run_reproduction Registry.quick in
      let micro = Micro.run () in
      write_bench_json ~mode ~experiments ~micro
  | "all" ->
      let experiments = run_reproduction Registry.all in
      let micro = Micro.run () in
      write_bench_json ~mode ~experiments ~micro
  | id -> (
      match Registry.find id with
      | Some e ->
          let experiments = run_reproduction [ e ] in
          write_bench_json ~mode ~experiments ~micro:[]
      | None ->
          Printf.eprintf "unknown experiment %S; try `list`\n" id;
          exit 1)
