(* Tests for the observability layer: the metrics registry, JSON
   rendering (including the BENCH.json schema), descriptor-queue access
   accounting under the shadow-pointer discipline, and SAR reassembly
   rejection paths. *)

open Osiris_sim
module Metrics = Osiris_obs.Metrics
module Json = Osiris_obs.Json
module Stats = Osiris_util.Stats
module Report = Osiris_experiments.Report
module Desc_queue = Osiris_board.Desc_queue
module Desc = Osiris_board.Desc
module Sar = Osiris_atm.Sar
module Cell = Osiris_atm.Cell

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_counter_aggregation () =
  Metrics.reset ();
  let a = Metrics.counter "t.ctr" in
  let b = Metrics.counter "t.ctr" in
  Metrics.add a 3;
  Metrics.incr b;
  Alcotest.(check int) "per-handle value" 3 (Metrics.counter_value a);
  Alcotest.(check string) "handle name" "t.ctr" (Metrics.counter_name a);
  (match Metrics.find "t.ctr" with
  | Some (Metrics.V_int n) -> Alcotest.(check int) "same-name handles sum" 4 n
  | _ -> Alcotest.fail "counter not in snapshot");
  Metrics.reset ();
  Alcotest.(check bool) "reset hides the name" true (Metrics.find "t.ctr" = None);
  Metrics.incr a;
  Alcotest.(check int) "handle keeps working after reset" 4
    (Metrics.counter_value a)

let test_gauges_and_dists () =
  Metrics.reset ();
  let g = Metrics.gauge "t.g" in
  Metrics.set g 2.5;
  Metrics.gauge_fn "t.gf" (fun () -> 7.0);
  let d1 = Metrics.dist "t.d" in
  let d2 = Metrics.dist "t.d" in
  List.iter (fun x -> Stats.add d1 x) [ 1.0; 2.0 ];
  Stats.add d2 3.0;
  let h = Metrics.histogram "t.h" ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (fun x -> Stats.Histogram.add h x) [ 1.0; 5.0; 5.0; 9.0 ];
  (match Metrics.find "t.g" with
  | Some (Metrics.V_float v) -> Alcotest.(check (float 0.0)) "gauge" 2.5 v
  | _ -> Alcotest.fail "gauge missing");
  (match Metrics.find "t.gf" with
  | Some (Metrics.V_float v) -> Alcotest.(check (float 0.0)) "pull gauge" 7.0 v
  | _ -> Alcotest.fail "pull gauge missing");
  (match Metrics.find "t.d" with
  | Some (Metrics.V_dist dv) ->
      Alcotest.(check int) "merged count" 3 dv.Metrics.d_n;
      Alcotest.(check (float 1e-9)) "merged mean" 2.0 dv.Metrics.d_mean;
      Alcotest.(check (float 1e-9)) "merged sum" 6.0 dv.Metrics.d_sum
  | _ -> Alcotest.fail "dist missing");
  (match Metrics.find "t.h" with
  | Some (Metrics.V_hist hv) ->
      Alcotest.(check int) "histogram count" 4 hv.Metrics.h_n;
      Alcotest.(check bool) "p50 in range" true
        (hv.Metrics.h_p50 >= 4.0 && hv.Metrics.h_p50 <= 6.0)
  | _ -> Alcotest.fail "histogram missing");
  Metrics.reset ()

let test_snapshot_sorted_json () =
  Metrics.reset ();
  ignore (Metrics.counter "b.x");
  let a = Metrics.counter "a.y" in
  Metrics.add a 2;
  Alcotest.(check string) "keys sorted, counters as ints"
    "{\"a.y\":2,\"b.x\":0}"
    (Json.to_string (Metrics.to_json ()));
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* JSON builder corners. *)

let test_json_escaping_and_floats () =
  Alcotest.(check string) "escapes" "{\"k\\n\":\"v\\\"q\\\\\"}"
    (Json.to_string (Json.Assoc [ ("k\n", Json.String "v\"q\\") ]));
  Alcotest.(check string) "control chars" "\"\\u0001\""
    (Json.to_string (Json.String "\001"));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "composite" "[1,true,null,1.5]"
    (Json.to_string (Json.List [ Json.Int 1; Json.Bool true; Json.Null;
                                 Json.Float 1.5 ]))

(* ------------------------------------------------------------------ *)
(* BENCH.json schema (golden). *)

let test_bench_json_golden () =
  Metrics.reset ();
  let table =
    { Report.t_title = "t"; header = [ "a"; "b" ]; rows = [ [ "1"; "2" ] ];
      t_paper_note = "n" }
  in
  let figure =
    { Report.title = "f"; xlabel = "x"; ylabel = "y";
      series = [ { Report.label = "s"; points = [ (1, 1.5) ] } ];
      paper_note = "p" }
  in
  let doc =
    Report.bench_json ~mode:"test"
      ~experiments:
        [ ("t1", "a table", Report.table_json table);
          ("f1", "a figure", Report.figure_json figure) ]
      ~micro:[ ("m", Some 12.5); ("n", None) ]
  in
  let expected =
    "{\"schema\":\"osiris-bench/8\",\"mode\":\"test\",\"experiments\":[\
     {\"id\":\"t1\",\"description\":\"a table\",\"result\":{\"kind\":\"table\",\
     \"title\":\"t\",\"header\":[\"a\",\"b\"],\"rows\":[[\"1\",\"2\"]],\
     \"paper_note\":\"n\"}},{\"id\":\"f1\",\"description\":\"a figure\",\
     \"result\":{\"kind\":\"figure\",\"title\":\"f\",\"xlabel\":\"x\",\
     \"ylabel\":\"y\",\"series\":[{\"label\":\"s\",\"points\":[{\"x\":1,\
     \"y\":1.5}]}],\"paper_note\":\"p\"}}],\"micro\":[{\"name\":\"m\",\
     \"ns_per_run\":12.5},{\"name\":\"n\",\"ns_per_run\":null}],\
     \"metrics\":{}}"
  in
  Alcotest.(check string) "BENCH.json document" expected (Json.to_string doc)

(* ------------------------------------------------------------------ *)
(* Descriptor-queue access accounting. *)

let in_process eng f =
  let done_ = ref false in
  Process.spawn eng ~name:"t" (fun () ->
      f ();
      done_ := true);
  Engine.run eng;
  Alcotest.(check bool) "test process ran to completion" true !done_

(* One real pointer read per burst, shadow hits for the rest — including
   across head/tail wraparound (size 8, 4 bursts of 5). *)
let test_queue_shadow_wraparound () =
  let eng = Engine.create () in
  let q =
    Desc_queue.create eng ~size:8 ~direction:Desc_queue.Board_to_host
      ~locking:Desc_queue.Lock_free ~hooks:Desc_queue.free_hooks ()
  in
  in_process eng (fun () ->
      for burst = 1 to 4 do
        for i = 1 to 5 do
          Alcotest.(check bool) "board enqueue" true
            (Desc_queue.board_enqueue q
               (Desc.v ~addr:(((burst * 10) + i) * 4096) ~len:64 ()))
        done;
        let s0 = Desc_queue.access_stats q in
        for _ = 1 to 5 do
          if Desc_queue.host_dequeue q = None then
            Alcotest.fail "queue lost an element"
        done;
        let s1 = Desc_queue.access_stats q in
        Alcotest.(check int)
          (Printf.sprintf "burst %d: 4 of 5 probes resolved by the shadow"
             burst)
          4
          (s1.Desc_queue.shadow_hits - s0.Desc_queue.shadow_hits)
      done)

(* The transmit-stall probe must charge PIO like a failing enqueue
   (bugfix: the stall path used to consult [is_full] for free). *)
let test_probe_full_is_accounted () =
  let eng = Engine.create () in
  let q =
    Desc_queue.create eng ~size:4 ~direction:Desc_queue.Host_to_board
      ~locking:Desc_queue.Lock_free ~hooks:Desc_queue.free_hooks ()
  in
  let rxq =
    Desc_queue.create eng ~size:4 ~direction:Desc_queue.Board_to_host
      ~locking:Desc_queue.Lock_free ~hooks:Desc_queue.free_hooks ()
  in
  in_process eng (fun () ->
      for i = 1 to 3 do
        Alcotest.(check bool) "fill" true
          (Desc_queue.host_enqueue q (Desc.v ~addr:(i * 4096) ~len:64 ()))
      done;
      Alcotest.(check bool) "queue is full" true (Desc_queue.is_full q);
      let s0 = Desc_queue.access_stats q in
      Alcotest.(check bool) "probe sees full" true
        (Desc_queue.host_probe_full q);
      let s1 = Desc_queue.access_stats q in
      Alcotest.(check bool) "probe paid a pointer read" true
        (s1.Desc_queue.host_reads > s0.Desc_queue.host_reads);
      (match Desc_queue.host_probe_full rxq with
      | _ -> Alcotest.fail "probe on a receive queue must be rejected"
      | exception Invalid_argument _ -> ()))

(* ------------------------------------------------------------------ *)
(* SAR Per_link rejection paths. *)

let cells_of pdu ~nlinks = Array.of_list (Sar.segment ~vci:1 ~nlinks pdu)

let test_sar_duplicate_rejected () =
  let cells = cells_of (Bytes.make 150 'a') ~nlinks:2 in
  Alcotest.(check int) "4 cells" 4 (Array.length cells);
  let sar = Sar.create (Sar.Per_link 2) ~max_cells:64 in
  let push k =
    Sar.push sar ~link:(cells.(k).Cell.seq mod 2) cells.(k)
  in
  (match push 0 with Sar.Placed _ -> () | _ -> Alcotest.fail "cell 0");
  (match push 1 with Sar.Placed _ -> () | _ -> Alcotest.fail "cell 1");
  (match push 2 with Sar.Placed _ -> () | _ -> Alcotest.fail "cell 2");
  (* The same cell arrives again (e.g. a striping fault). *)
  (match push 2 with Sar.Placed _ -> () | _ -> Alcotest.fail "dup placed");
  match push 3 with
  | Sar.Rejected reason ->
      Alcotest.(check string) "over-count detected"
        "more cells than the PDU length allows" reason
  | _ -> Alcotest.fail "duplicate cell went unnoticed"

let test_sar_overflow_rejected () =
  let cells = cells_of (Bytes.make 150 'b') ~nlinks:2 in
  let sar = Sar.create (Sar.Per_link 2) ~max_cells:3 in
  for k = 0 to 2 do
    match Sar.push sar ~link:(cells.(k).Cell.seq mod 2) cells.(k) with
    | Sar.Placed _ -> ()
    | _ -> Alcotest.fail "premature completion/rejection"
  done;
  match Sar.push sar ~link:(cells.(3).Cell.seq mod 2) cells.(3) with
  | Sar.Rejected reason ->
      Alcotest.(check string) "bounded reassembly" "reassembly overflow"
        reason
  | _ -> Alcotest.fail "overflow went unnoticed"

let suite =
  [
    Alcotest.test_case "counter aggregation & reset" `Quick
      test_counter_aggregation;
    Alcotest.test_case "gauges, dists, histograms" `Quick
      test_gauges_and_dists;
    Alcotest.test_case "snapshot JSON sorted" `Quick test_snapshot_sorted_json;
    Alcotest.test_case "JSON escaping & floats" `Quick
      test_json_escaping_and_floats;
    Alcotest.test_case "BENCH.json golden schema" `Quick
      test_bench_json_golden;
    Alcotest.test_case "queue shadow stats across wraparound" `Quick
      test_queue_shadow_wraparound;
    Alcotest.test_case "host_probe_full is accounted" `Quick
      test_probe_full_is_accounted;
    Alcotest.test_case "sar per-link duplicate rejected" `Quick
      test_sar_duplicate_rejected;
    Alcotest.test_case "sar per-link overflow rejected" `Quick
      test_sar_overflow_rejected;
  ]
