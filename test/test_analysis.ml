(* Ownership lint: policy parsing and each rule firing on the committed
   fixtures under fixtures/olint (which are parsed, never compiled).
   `dune build @olint` additionally runs the real binary over both the
   clean tree (expects exit 0) and these fixtures (expects exit 1). *)

module Policy = Osiris_analysis.Policy
module Lint = Osiris_analysis.Lint
module Typed = Osiris_analysis.Typed

(* `dune runtest` runs with cwd = _build/default/test (fixtures copied in
   via the test deps); `dune exec test/test_main.exe` runs from the repo
   root. Resolve against either. *)
let fixture_root =
  if Sys.file_exists "fixtures/olint" then "fixtures/olint"
  else "test/fixtures/olint"

let fixture name = Filename.concat fixture_root name

(* A policy equivalent in shape to the repo's olint.policy, inlined so
   the tests do not depend on the invocation directory. *)
let policy =
  Policy.of_string
    "scan lib\n\
     own head lib/board/desc_queue.ml\n\
     own tail lib/board/desc_queue.ml\n\
     own q_head lib/switch/switch.ml\n\
     own reserved lib/switch/switch.ml\n\
     own ent_head lib/lb/reps.ml\n\
     own ent_tail lib/lb/reps.ml\n\
     own cached lib/lb/reps.ml\n\
     own cur lib/sim/wheel.ml\n\
     own free lib/sim/wheel.ml lib/mem/phys_mem.ml\n\
     own c_count lib/classify/table.ml\n\
     own c_maxd lib/classify/table.ml\n\
     own c_lookups lib/classify/table.ml\n\
     shared irq_filter\n\
     accessor lib/board/board.ml\n"

let rules vs = List.map (fun v -> v.Lint.rule) vs

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let test_policy_parsing () =
  Alcotest.(check (list string)) "scan" [ "lib" ] policy.Policy.scan;
  Alcotest.(check (option (list string))) "owned field"
    (Some [ "lib/board/desc_queue.ml" ])
    (Policy.owners policy "head");
  Alcotest.(check (option (list string))) "shared field -> accessors"
    (Some [ "lib/board/board.ml" ])
    (Policy.owners policy "irq_filter");
  Alcotest.(check (option (list string))) "undeclared field" None
    (Policy.owners policy "slots_foo");
  Alcotest.(check bool) "path match from any cwd" true
    (Policy.path_matches "lib/board/desc_queue.ml"
       "/root/repo/lib/board/desc_queue.ml");
  Alcotest.(check bool) "suffix must be whole components" false
    (Policy.path_matches "board/desc_queue.ml" "lib/board/not_desc_queue.ml");
  (match Policy.of_string "shared a\nown head\n" with
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the line (%s)" msg)
        true
        (contains ~affix:"line 2" msg)
  | _ -> Alcotest.fail "malformed 'own' accepted");
  match Policy.of_string "frobnicate lib\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown directive accepted"

let test_r1_foreign_writer () =
  match Lint.check_file policy (fixture "r1_bad_owner.ml") with
  | [ v ] ->
      Alcotest.(check string) "rule" "R1" v.Lint.rule;
      Alcotest.(check int) "line" 5 v.Lint.line;
      Alcotest.(check bool) "message names the field" true
        (contains ~affix:"head" v.Lint.message)
  | vs -> Alcotest.failf "expected exactly one R1, got %d" (List.length vs)

let test_r2_obj () =
  match Lint.check_file policy (fixture "r2_obj.ml") with
  | [ v ] ->
      Alcotest.(check string) "rule" "R2" v.Lint.rule;
      Alcotest.(check int) "line" 2 v.Lint.line
  | vs -> Alcotest.failf "expected exactly one R2, got %d" (List.length vs)

let test_r3_catchall_and_exit () =
  let vs = Lint.check_file policy (fixture "r3_catchall.ml") in
  Alcotest.(check (list string)) "both R3 forms" [ "R3"; "R3" ] (rules vs);
  Alcotest.(check (list int)) "lines" [ 3; 4 ]
    (List.sort compare (List.map (fun v -> v.Lint.line) vs))

let test_r3_allow_exemptions () =
  let exempt =
    Policy.of_string
      (Printf.sprintf
         "allow catchall %s # test fixture\nallow exit %s # test fixture\n"
         (fixture "r3_catchall.ml")
         (fixture "r3_catchall.ml"))
  in
  Alcotest.(check (list string)) "exempted file is clean" []
    (rules (Lint.check_file exempt (fixture "r3_catchall.ml")))

(* Exemption-shaped directives must carry a '# why' comment, and allow
   keys are a closed set — a typo'd rule name must not silently grant
   nothing (or everything). *)
let test_exemptions_need_justification () =
  let rejects ~what s =
    match Policy.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  rejects ~what:"unjustified allow" "allow catchall lib/foo.ml\n";
  rejects ~what:"unknown allow key" "allow catchnone lib/foo.ml # why\n";
  rejects ~what:"unjustified alloc-free" "alloc-free Float.min\n";
  rejects ~what:"unjustified uncovered" "uncovered switch.marked\n";
  let ok =
    Policy.of_string
      "allow catchall lib/foo.ml # fixture\n\
       alloc-free Float.min # compare/select\n\
       uncovered x.y # telemetry\n"
  in
  Alcotest.(check (list string)) "alloc-free parsed" [ "Float.min" ]
    ok.Policy.alloc_free;
  Alcotest.(check bool) "uncovered parsed" true (Policy.uncovered_ok ok "x.y")

let test_hot_directive () =
  let p = Policy.of_string "hot lib/sim/wheel.ml:add\nhot lib/atm/sar.ml:push\n" in
  Alcotest.(check (list (pair string string)))
    "hot entries"
    [ ("lib/sim/wheel.ml", "add"); ("lib/atm/sar.ml", "push") ]
    p.Policy.hot;
  Alcotest.(check bool) "is_hot" true
    (Policy.is_hot p ~file:"lib/sim/wheel.ml" ~fn:"add");
  match Policy.of_string "hot lib/sim/wheel.ml\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "hot without :function accepted"

let test_r4_missing_mli () =
  match Lint.check_missing_mli policy (fixture "r4_missing_mli") with
  | [ v ] ->
      Alcotest.(check string) "rule" "R4" v.Lint.rule;
      Alcotest.(check bool) "names the orphan" true
        (Filename.basename v.Lint.file = "orphan.ml")
  | vs -> Alcotest.failf "expected exactly one R4, got %d" (List.length vs)

let test_r0_unparsable () =
  Alcotest.(check (list string)) "parse failure is a violation" [ "R0" ]
    (rules (Lint.check_file policy (fixture "r0_unparsable.ml")))

(* The whole fixture tree through the same entry point the binary uses:
   every rule represented, results sorted by file. *)
let test_check_tree_over_fixtures () =
  let vs = Lint.check_tree policy [ fixture_root ] in
  let count r = List.length (List.filter (fun v -> v.Lint.rule = r) vs) in
  Alcotest.(check int) "one R0" 1 (count "R0");
  Alcotest.(check int) "R1 per foreign write" 11 (count "R1");
  Alcotest.(check int) "one R2" 1 (count "R2");
  Alcotest.(check int) "two R3" 2 (count "R3");
  Alcotest.(check int) "R4 for every .mli-less fixture .ml" 9 (count "R4");
  let files = List.map (fun v -> v.Lint.file) vs in
  Alcotest.(check (list string)) "sorted by file" (List.sort compare files)
    files;
  (* The grep-able one-line form carries file, line and rule. *)
  let printed =
    Format.asprintf "%a" Lint.pp_violation
      (List.find (fun v -> v.Lint.rule = "R1") vs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "pp form (%s)" printed)
    true
    (contains ~affix:"r1_bad_owner.ml:5: [R1]" printed)

(* ------------------------------------------------------------------ *)
(* Typed passes (R5/R6/R7) over the compiled fixture library. The
   fixtures are linked into this test binary, so their .cmt artifacts
   are guaranteed to exist under the build tree by the time we run. *)

let cmt_root = if Sys.file_exists "fixtures/olint" then "." else "_build/default"

let typed_policy =
  Policy.of_string
    "scan test/fixtures/olint/typed\n\
     hot test/fixtures/olint/typed/r5_alloc.ml:tick\n\
     hot test/fixtures/olint/typed/r5_transitive.ml:tick\n\
     hot test/fixtures/olint/typed/r5_hatch.ml:tick\n\
     hot test/fixtures/olint/typed/r5_classify.ml:lookup\n\
     sim-time Engine.now\n\
     wall-clock Unix.gettimeofday\n\
     coverage-fn accounting\n"

let test_typed_fixtures () =
  let vs = Typed.check_tree typed_policy ~cmt_root in
  let of_rule r = List.filter (fun v -> v.Lint.rule = r) vs in
  Alcotest.(check int) "four R5" 4 (List.length (of_rule "R5"));
  Alcotest.(check int) "one R6" 1 (List.length (of_rule "R6"));
  Alcotest.(check int) "one R7" 1 (List.length (of_rule "R7"));
  let in_file name =
    List.filter (fun v -> Filename.basename v.Lint.file = name) vs
  in
  (match in_file "r5_alloc.ml" with
  | [ v ] ->
      Alcotest.(check bool) "direct allocation flagged" true
        (contains ~affix:"tuple construction" v.Lint.message)
  | vs -> Alcotest.failf "r5_alloc: expected 1 violation, got %d"
            (List.length vs));
  (match in_file "r5_transitive.ml" with
  | [ v ] ->
      Alcotest.(check bool) "reported in the callee" true
        (contains ~affix:"boxit" v.Lint.message);
      Alcotest.(check bool) "names the hot root" true
        (contains ~affix:"hot via" v.Lint.message)
  | vs -> Alcotest.failf "r5_transitive: expected 1 violation, got %d"
            (List.length vs));
  (match in_file "r5_classify.ml" with
  | [ v ] ->
      Alcotest.(check bool) "boxed lookup result flagged" true
        (contains ~affix:"Some" v.Lint.message)
  | vs -> Alcotest.failf "r5_classify: expected 1 violation, got %d"
            (List.length vs));
  (match in_file "r5_hatch.ml" with
  | [ v ] ->
      (* the justified box is accepted; only the bare attribute fires *)
      Alcotest.(check bool) "bare escape hatch flagged" true
        (contains ~affix:"justification" v.Lint.message)
  | vs -> Alcotest.failf "r5_hatch: expected 1 violation, got %d"
            (List.length vs));
  (match in_file "r6_mix.ml" with
  | [ v ] ->
      Alcotest.(check string) "rule" "R6" v.Lint.rule;
      Alcotest.(check bool) "names the mixing operator" true
        (contains ~affix:"wall-clock" v.Lint.message)
  | vs -> Alcotest.failf "r6_mix: expected 1 violation, got %d"
            (List.length vs));
  match in_file "r7_counter.ml" with
  | [ v ] ->
      Alcotest.(check string) "rule" "R7" v.Lint.rule;
      Alcotest.(check bool) "names the counter" true
        (contains ~affix:"fixture.lost_cells" v.Lint.message)
  | vs ->
      Alcotest.failf "r7_counter: expected 1 violation, got %d"
        (List.length vs)

(* The stale-policy rot guard: a hot entry pointing at a function that
   no longer exists must itself be a violation, not a silent no-op. *)
let test_typed_stale_hot_entry () =
  let p =
    Policy.of_string
      "scan test/fixtures/olint/typed\n\
       hot test/fixtures/olint/typed/r5_alloc.ml:gone\n\
       hot test/fixtures/olint/typed/no_such_file.ml:tick\n"
  in
  let vs =
    List.filter (fun v -> v.Lint.rule = "R5") (Typed.check_tree p ~cmt_root)
  in
  Alcotest.(check int) "both stale entries flagged" 2 (List.length vs);
  List.iter
    (fun v ->
      Alcotest.(check string) "rule" "R5" v.Lint.rule;
      Alcotest.(check bool) "message says stale" true
        (contains ~affix:"hot entry" v.Lint.message))
    vs

let suite =
  [
    Alcotest.test_case "policy parses and answers queries" `Quick
      test_policy_parsing;
    Alcotest.test_case "R1: foreign writer of an owned field" `Quick
      test_r1_foreign_writer;
    Alcotest.test_case "R2: Obj reference" `Quick test_r2_obj;
    Alcotest.test_case "R3: catch-all and exit" `Quick
      test_r3_catchall_and_exit;
    Alcotest.test_case "R3: allow-listed file is exempt" `Quick
      test_r3_allow_exemptions;
    Alcotest.test_case "exemptions need justification; allow keys closed"
      `Quick test_exemptions_need_justification;
    Alcotest.test_case "hot directive parses and answers is_hot" `Quick
      test_hot_directive;
    Alcotest.test_case "R4: missing .mli" `Quick test_r4_missing_mli;
    Alcotest.test_case "R0: unparsable file reported" `Quick
      test_r0_unparsable;
    Alcotest.test_case "check_tree covers every rule, sorted" `Quick
      test_check_tree_over_fixtures;
    Alcotest.test_case "R5/R6/R7: typed passes catch the seeded fixtures"
      `Quick test_typed_fixtures;
    Alcotest.test_case "R5: stale hot entries are violations" `Quick
      test_typed_stale_hot_entry;
  ]
