(* Tests for the trace facility. *)

module Trace = Osiris_sim.Trace

let test_enable_disable () =
  Trace.disable Trace.Driver;
  Alcotest.(check bool) "off by default" false (Trace.enabled Trace.Driver);
  Trace.enable Trace.Driver;
  Alcotest.(check bool) "on after enable" true (Trace.enabled Trace.Driver);
  Trace.disable Trace.Driver;
  Alcotest.(check bool) "off after disable" false (Trace.enabled Trace.Driver)

let test_emit_disabled_is_cheap () =
  Trace.disable Trace.Link;
  (* Must not raise and must not evaluate into visible output. *)
  Trace.emitf Trace.Link ~now:0 "never shown %d" 42;
  Trace.emit Trace.Link ~now:0 "never shown"

let test_category_names () =
  List.iter
    (fun (c, n) -> Alcotest.(check string) "name" n (Trace.category_name c))
    [ (Trace.Board_tx, "board-tx"); (Trace.Board_rx, "board-rx");
      (Trace.Driver, "driver"); (Trace.Protocol, "protocol");
      (Trace.Link, "link") ]

(* A callback sink counts as an observer: events must flow, be numbered
   from 1, and land in the ring; reset must clear it all. *)
let test_ring_and_reset () =
  Trace.reset_for_testing ();
  let seen = ref 0 in
  Trace.on_event (fun _ -> incr seen);
  Alcotest.(check bool) "sink makes category enabled" true
    (Trace.enabled Trace.Board_rx);
  Trace.emit Trace.Board_rx ~now:10 "one";
  Trace.emitf Trace.Driver ~now:20 "two %d" 2;
  Alcotest.(check int) "sink saw both" 2 !seen;
  Alcotest.(check int) "emission count" 2 (Trace.events_emitted ());
  (match Trace.recent () with
  | [ e1; e2 ] ->
      Alcotest.(check int) "seq starts at 1" 1 e1.Trace.seq;
      Alcotest.(check string) "first msg" "one" e1.Trace.msg;
      Alcotest.(check int) "first timestamp" 10 e1.Trace.t_ns;
      Alcotest.(check int) "seq increments" 2 e2.Trace.seq;
      Alcotest.(check string) "formatted msg" "two 2" e2.Trace.msg
  | evs ->
      Alcotest.fail (Printf.sprintf "ring holds %d events" (List.length evs)));
  Trace.reset_for_testing ();
  Alcotest.(check int) "reset clears the count" 0 (Trace.events_emitted ());
  Alcotest.(check int) "reset clears the ring" 0
    (List.length (Trace.recent ()));
  Alcotest.(check bool) "reset drops the sink" false
    (Trace.enabled Trace.Board_rx)

let test_jsonl_sink () =
  Trace.reset_for_testing ();
  let path = Filename.temp_file "osiris_trace" ".jsonl" in
  Trace.set_json_path (Some path);
  Trace.emit Trace.Link ~now:1500 "cell";
  Trace.emitf Trace.Driver ~now:2500 "pdu %d" 7;
  Trace.set_json_path None;
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  let eof = try ignore (input_line ic); false with End_of_file -> true in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "line 1"
    "{\"seq\":1,\"t_ns\":1500,\"t_us\":1.5,\"cat\":\"link\",\"msg\":\"cell\"}"
    l1;
  Alcotest.(check string) "line 2"
    "{\"seq\":2,\"t_ns\":2500,\"t_us\":2.5,\"cat\":\"driver\",\"msg\":\"pdu 7\"}"
    l2;
  Alcotest.(check bool) "one line per event" true eof;
  Trace.reset_for_testing ()

(* Regression: the disabled [emitf] path used to render into the shared
   [Format.str_formatter], clobbering concurrent users of it. *)
let test_disabled_emitf_leaves_str_formatter_alone () =
  Trace.reset_for_testing ();
  Format.fprintf Format.str_formatter "keep";
  Trace.emitf Trace.Protocol ~now:0 "dropped %s %d" "x" 1;
  Alcotest.(check string) "str_formatter untouched" "keep"
    (Format.flush_str_formatter ())

let suite =
  [
    Alcotest.test_case "enable/disable" `Quick test_enable_disable;
    Alcotest.test_case "disabled emit is silent" `Quick
      test_emit_disabled_is_cheap;
    Alcotest.test_case "category names" `Quick test_category_names;
    Alcotest.test_case "ring, sinks and reset" `Quick test_ring_and_reset;
    Alcotest.test_case "JSONL sink" `Quick test_jsonl_sink;
    Alcotest.test_case "disabled emitf spares str_formatter" `Quick
      test_disabled_emitf_leaves_str_formatter_alone;
  ]
