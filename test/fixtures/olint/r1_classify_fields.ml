(* R1 fixture: the classification table's slot arrays and probe counters
   have one writer (lib/classify/table.ml); these foreign assignments
   must be flagged. *)

let poke t =
  t.c_count <- 0;
  t.c_maxd <- t.c_maxd + 1;
  t.c_lookups <- t.c_lookups + 1
