(* olint fixture: does not parse. *)
let let = in
