(* R1 fixture: the timer wheel's floor and freelist head belong to
   lib/sim/wheel.ml alone; writing them from outside must be flagged. *)

let poke w n =
  w.cur <- w.cur + 1;
  w.free <- n
