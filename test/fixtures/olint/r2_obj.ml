(* olint fixture: Obj escape hatch. Never compiled. *)
let cast (x : int) : string = Obj.magic x
