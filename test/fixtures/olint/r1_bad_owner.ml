(* olint fixture: assigns a policy-owned field outside its declared
   writer file. Never compiled -- parsed by the lint only. *)
type q = { mutable head : int; mutable tail : int }

let bump (q : q) = q.head <- q.head + 1
