(* R1 fixture: the switch's ring pointer and EPD reservation ledger have
   one writer (lib/switch/switch.ml); these foreign assignments must be
   flagged. *)

let poke port =
  port.q_head <- 0;
  port.reserved <- port.reserved + 1
