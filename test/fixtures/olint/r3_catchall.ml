(* olint fixture: catch-all handler and exit in library code. Never
   compiled. *)
let swallow f = try f () with _ -> ()
let bail () = Stdlib.exit 1
