val make : unit -> Osiris_obs.Metrics.counter
val bump : Osiris_obs.Metrics.counter -> unit
