(* R7 fixture: a registered counter that no conservation or accounting
   check ever reads, and no 'uncovered' policy entry excuses. The
   registration lives inside a function so linking this fixture into the
   test binary leaves the global metrics registry untouched. *)

module Metrics = Osiris_obs.Metrics

let make () = Metrics.counter "fixture.lost_cells"

let bump c = Metrics.incr c
