(* R5 fixture: [tick] is declared hot in the fixture policy but builds a
   tuple per call — the lint must flag the construction. *)

let tick a b = (a, b)
