(* R6 fixture: simulated nanoseconds meet wall-clock-derived nanoseconds
   in one subtraction without a named conversion ([skew], flagged), and
   once with the justified escape hatch ([skew_ok], accepted). *)

module Engine = Osiris_sim.Engine

let skew eng =
  let wall_ns = int_of_float (Unix.gettimeofday () *. 1e9) in
  Engine.now eng - wall_ns

let skew_ok eng =
  (let wall_ns = int_of_float (Unix.gettimeofday () *. 1e9) in
   Engine.now eng - wall_ns)
  [@osiris.clock_ok "fixture: deliberate cross-domain skew probe"]
