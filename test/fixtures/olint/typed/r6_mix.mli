val skew : Osiris_sim.Engine.t -> int
val skew_ok : Osiris_sim.Engine.t -> int
