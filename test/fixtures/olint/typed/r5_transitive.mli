val boxit : int -> int option
val tick : int -> int
