val lookup : int array -> int -> int option
