(* R5 fixture: the hot function allocates nothing itself but calls a
   sibling that does — the lint must follow the call and report the
   allocation as reachable from the hot root. *)

let boxit x = Some x

let tick x = match boxit x with Some y -> y | None -> 0
