(* R5 fixture: a classification-style lookup declared hot in the fixture
   policy but boxing its result per probe — the lint must flag the
   option construction. The real table returns a slot index instead. *)

let lookup keys key = if keys.(0) = key then Some 0 else None
