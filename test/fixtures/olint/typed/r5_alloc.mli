val tick : int -> int -> int * int
