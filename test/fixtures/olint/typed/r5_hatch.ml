(* R5 fixture: the escape hatch in both of its forms. The justified box
   must be accepted; the bare [@osiris.alloc_ok] without a reason string
   must itself be a violation. *)

let tick x =
  let ok = (Some x [@osiris.alloc_ok "fixture: justified one-off box"]) in
  let bad = (Some x [@osiris.alloc_ok]) in
  match ok with
  | Some a -> a
  | None -> ( match bad with Some b -> b | None -> x)
