val tick : int -> int
