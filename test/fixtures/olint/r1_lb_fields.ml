(* R1 fixture: the REPS balancer's entropy-ring pointers and cached-path
   bitmap have one writer (lib/lb/reps.ml); these foreign assignments
   must be flagged. *)

let poke r =
  r.ent_head <- 0;
  r.ent_tail <- r.ent_tail + 1;
  r.cached <- r.cached lor 1
