(* olint fixture: no sibling .mli. *)
let answer = 42
