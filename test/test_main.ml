(* Aggregate test runner: one alcotest section per library. *)

let () =
  Alcotest.run "osiris-repro"
    [
      ("sim", Test_sim.suite);
      ("trace", Test_trace.suite);
      ("util", Test_util.suite);
      ("mem", Test_mem.suite);
      ("bus", Test_bus.suite);
      ("cache", Test_cache.suite);
      ("atm", Test_atm.suite);
      ("link", Test_link.suite);
      ("board", Test_board.suite);
      ("os", Test_os.suite);
      ("xkernel", Test_xkernel.suite);
      ("proto", Test_proto.suite);
      ("fbufs", Test_fbufs.suite);
      ("ether", Test_ether.suite);
      ("core", Test_core.suite);
      ("adc", Test_adc.suite);
      ("faults", Test_faults.suite);
      ("switch", Test_switch.suite);
      ("topo", Test_topo.suite);
      ("lb", Test_lb.suite);
      ("transport", Test_transport.suite);
      ("check", Test_check.suite);
      ("classify", Test_classify.suite);
      ("traffic", Test_traffic.suite);
      ("analysis", Test_analysis.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
    ]
