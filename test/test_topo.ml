(* Fabric wiring plans: the generator's structural invariants, pinned
   over random specs (the properties ISSUE 9 names: port wiring is a
   bijection, every host pair has at least one path, equal-cost path
   sets have equal hop counts, equal specs expand identically). *)

module Spec = Osiris_topo.Spec
module Builder = Osiris_topo.Builder

(* ------------------------------------------------------------------ *)
(* Deterministic unit checks on the canonical shapes. *)

let test_star_shape () =
  let f = Builder.build (Spec.Star { hosts = 4 }) in
  Alcotest.(check int) "switches" 1 (Builder.nswitches f);
  Alcotest.(check int) "hosts" 4 (Builder.nhosts f);
  Alcotest.(check int) "trunks" 0 (Array.length f.Builder.trunks);
  Alcotest.(check int) "ports" 4 f.Builder.switch_nports.(0)

let test_chain_shape () =
  let f = Builder.build (Spec.Chain { hosts = 5 }) in
  Alcotest.(check int) "switches" 2 (Builder.nswitches f);
  Alcotest.(check int) "trunks" 1 (Array.length f.Builder.trunks);
  (* first ceil(5/2)=3 hosts on switch 0, the rest on switch 1 *)
  Alcotest.(check (list int)) "attachment switches" [ 0; 0; 0; 1; 1 ]
    (Array.to_list
       (Array.map (fun p -> p.Builder.pr_sw) f.Builder.hosts))

let test_fat_tree_counts () =
  let f = Builder.build (Spec.Fat_tree { k = 4; hosts_per_edge = 1 }) in
  Alcotest.(check int) "hosts" 8 (Builder.nhosts f);
  Alcotest.(check int) "switches" 20 (Builder.nswitches f);
  (* inter-pod pairs see (k/2)^2 = 4 equal-cost paths *)
  Alcotest.(check int) "inter-pod paths" 4
    (List.length (Builder.paths f ~src:0 ~dst:2));
  (* same-edge pairs (k=4, hosts_per_edge=2) collapse to one hop *)
  let g = Builder.build (Spec.Fat_tree { k = 4; hosts_per_edge = 2 }) in
  match Builder.paths g ~src:0 ~dst:1 with
  | [ [ hop ] ] ->
      Alcotest.(check int) "same-edge single switch" 0 hop.Builder.h_sw
  | ps ->
      Alcotest.failf "same-edge pair: expected one 1-hop path, got %d paths"
        (List.length ps)

let test_spec_validation () =
  let rejects s =
    match Spec.validate s with
    | () -> Alcotest.failf "accepted invalid spec %s" (Spec.to_string s)
    | exception Invalid_argument _ -> ()
  in
  rejects (Spec.Star { hosts = 1 });
  rejects (Spec.Fat_tree { k = 5; hosts_per_edge = 1 });
  rejects (Spec.Fat_tree { k = 4; hosts_per_edge = 3 });
  rejects (Spec.Leaf_spine { leaves = 0; spines = 2; hosts_per_leaf = 1 })

(* ------------------------------------------------------------------ *)
(* Random specs, kept small enough that whole-pair path enumeration
   stays cheap. *)

let spec_gen =
  let open QCheck.Gen in
  oneof
    [
      (2 -- 8 >|= fun hosts -> Spec.Star { hosts });
      (2 -- 8 >|= fun hosts -> Spec.Chain { hosts });
      ( triple (2 -- 4) (2 -- 4) (1 -- 3) >|= fun (leaves, spines, hosts_per_leaf) ->
        Spec.Leaf_spine { leaves; spines; hosts_per_leaf } );
      ( pair (oneofl [ 4; 6 ]) (1 -- 2) >|= fun (k, hosts_per_edge) ->
        Spec.Fat_tree { k; hosts_per_edge } );
    ]

let spec_arb = QCheck.make ~print:Spec.to_string spec_gen

(* Every switch port is used by exactly one occupant — host attachment
   or trunk endpoint — and every occupant's port exists. *)
let qcheck_wiring_bijection =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"port wiring is a bijection" spec_arb
       (fun spec ->
         let f = Builder.build spec in
         let occupants =
           Array.to_list f.Builder.hosts
           @ List.concat_map
               (fun t -> [ t.Builder.t_a; t.Builder.t_b ])
               (Array.to_list f.Builder.trunks)
         in
         let in_range { Builder.pr_sw; pr_port } =
           pr_sw >= 0
           && pr_sw < Builder.nswitches f
           && pr_port >= 0
           && pr_port < f.Builder.switch_nports.(pr_sw)
         in
         let distinct =
           List.length (List.sort_uniq compare occupants)
           = List.length occupants
         in
         let total_ports =
           Array.fold_left ( + ) 0 f.Builder.switch_nports
         in
         List.for_all in_range occupants
         && distinct
         && List.length occupants = total_ports))

(* Every ordered host pair has at least one path, and all of a pair's
   equal-cost paths have the same hop count. *)
let qcheck_paths_exist_equal_cost =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"every host pair: >=1 path, equal hop counts" spec_arb
       (fun spec ->
         let f = Builder.build spec in
         let nh = Builder.nhosts f in
         let ok = ref true in
         for src = 0 to nh - 1 do
           for dst = 0 to nh - 1 do
             if src <> dst then begin
               match Builder.paths f ~src ~dst with
               | [] -> ok := false
               | first :: rest ->
                   let len = List.length first in
                   if
                     len = 0
                     || not
                          (List.for_all
                             (fun p -> List.length p = len)
                             rest)
                   then ok := false
             end
           done
         done;
         !ok))

(* Equal specs expand to structurally identical fabrics (the contract
   instantiation's determinism rests on). *)
let qcheck_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"equal specs build equal fabrics"
       spec_arb (fun spec ->
         let a = Builder.build spec and b = Builder.build spec in
         a = b))

let suite =
  [
    Alcotest.test_case "star shape" `Quick test_star_shape;
    Alcotest.test_case "chain shape" `Quick test_chain_shape;
    Alcotest.test_case "fat-tree counts and path sets" `Quick
      test_fat_tree_counts;
    Alcotest.test_case "spec validation rejects bad dimensions" `Quick
      test_spec_validation;
    qcheck_wiring_bijection;
    qcheck_paths_exist_equal_cost;
    qcheck_deterministic;
  ]
