(* The cell-switch fabric: routing-table rewriting, overflow drop
   accounting against the always-on conservation equation, multi-host
   topologies (star and two-switch chain) delivering PDUs end to end,
   the seeded incast contention run with every loss accounted, and the
   switch datapath under explored enqueue/dequeue interleavings. *)

open Osiris_core
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Time = Osiris_sim.Time
module Cell = Osiris_atm.Cell
module Switch = Osiris_switch.Switch
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Explore = Osiris_check.Explore
module Scenarios = Osiris_check.Scenarios
module Incast = Osiris_experiments.Incast
module Fault_soak = Osiris_experiments.Fault_soak

let cell ?(vci = 10) ?(seq = 0) () =
  Cell.make ~vci ~seq ~eom:true ~last_of_pdu:true
    (Bytes.make Cell.data_size '\000')

let check_conservation sw =
  Alcotest.(check (list string))
    "cells in = forwarded + queued + dropped" []
    (Invariants.balance ~what:"switch"
       ~total:(Switch.stats sw).Switch.cells_in
       ~parts:(Switch.conservation sw))

(* Routing: the (in_port, in_vci) key picks the output port, the VCI is
   rewritten on the way through, replacement updates in place, and a
   cell with no entry is dropped and counted — never misdelivered. *)
let test_routing_rewrite () =
  let eng = Engine.create () in
  let sw =
    Switch.create eng { Switch.default_config with Switch.nports = 3 }
  in
  Switch.add_route sw ~in_port:0 ~in_vci:10 ~out_port:1 ~out_vci:20;
  Switch.add_route sw ~in_port:0 ~in_vci:11 ~out_port:2 ~out_vci:21;
  Switch.add_route sw ~in_port:1 ~in_vci:10 ~out_port:2 ~out_vci:22;
  Alcotest.(check (option (pair int int)))
    "same in_vci, different in_port"
    (Some (2, 22))
    (Switch.route sw ~in_port:1 ~in_vci:10);
  Switch.ingress_cell sw ~port:0 (cell ~vci:10 ~seq:5 ());
  Switch.ingress_cell sw ~port:0 (cell ~vci:11 ());
  Switch.ingress_cell sw ~port:1 (cell ~vci:10 ());
  Switch.ingress_cell sw ~port:2 (cell ~vci:99 ());
  (* unroutable *)
  (match Switch.drain_one sw ~port:1 with
  | Some c ->
      Alcotest.(check int) "VCI rewritten" 20 c.Cell.vci;
      Alcotest.(check int) "seq preserved for striping" 5 c.Cell.seq;
      Alcotest.(check bool) "framing preserved" true
        (c.Cell.eom && c.Cell.last_of_pdu)
  | None -> Alcotest.fail "port 1 should hold the rewritten cell");
  Alcotest.(check int) "port 2 queued both routed cells" 2
    (Switch.port_occupancy sw ~port:2);
  let s = Switch.stats sw in
  Alcotest.(check int) "unroutable cell counted" 1 s.Switch.dropped_no_route;
  Alcotest.(check int) "no overflow" 0 s.Switch.dropped_overflow;
  check_conservation sw;
  (* Replacement: reprogramming the same key redirects new cells. *)
  Switch.add_route sw ~in_port:0 ~in_vci:10 ~out_port:2 ~out_vci:30;
  Switch.ingress_cell sw ~port:0 (cell ~vci:10 ());
  Alcotest.(check int) "rerouted cell joined port 2" 3
    (Switch.port_occupancy sw ~port:2);
  check_conservation sw;
  Alcotest.check_raises "16-bit VCI enforced"
    (Invalid_argument "Switch.add_route: vci out of range") (fun () ->
      Switch.add_route sw ~in_port:0 ~in_vci:1 ~out_port:1 ~out_vci:0x1_0000);
  Alcotest.check_raises "port range enforced"
    (Invalid_argument "Switch.add_route: port 3 out of range") (fun () ->
      Switch.add_route sw ~in_port:0 ~in_vci:1 ~out_port:3 ~out_vci:1)

(* Overflow: a queue of [cap] cells accepts exactly [cap] of a burst,
   drops the rest under the dedicated counter, and the conservation
   equation holds at the instant of the drop, mid-drain and after. *)
let test_overflow_drop_accounting () =
  let eng = Engine.create () in
  let cap = 4 and burst = 11 in
  let sw =
    Switch.create eng
      { Switch.default_config with Switch.nports = 2; Switch.queue_cells = cap }
  in
  Switch.add_route sw ~in_port:0 ~in_vci:10 ~out_port:1 ~out_vci:20;
  for seq = 0 to burst - 1 do
    Switch.ingress_cell sw ~port:0 (cell ~vci:10 ~seq ());
    check_conservation sw
  done;
  let s = Switch.stats sw in
  Alcotest.(check int) "queue filled to capacity" cap
    (Switch.port_occupancy sw ~port:1);
  Alcotest.(check int) "excess dropped" (burst - cap) s.Switch.dropped_overflow;
  Alcotest.(check int) "high-water mark" cap s.Switch.max_occupancy;
  (* Drain: FIFO order, each dequeue counted as forwarded. *)
  for seq = 0 to cap - 1 do
    (match Switch.drain_one sw ~port:1 with
    | Some c -> Alcotest.(check int) "FIFO order" seq c.Cell.seq
    | None -> Alcotest.fail "queue drained early");
    check_conservation sw
  done;
  Alcotest.(check (option reject)) "empty after drain" None
    (Switch.drain_one sw ~port:1);
  Alcotest.(check int) "all survivors forwarded" cap
    (Switch.stats sw).Switch.forwarded;
  check_conservation sw;
  (* Freed capacity accepts new cells again. *)
  Switch.ingress_cell sw ~port:0 (cell ~vci:10 ~seq:50 ());
  Alcotest.(check int) "capacity recovered" 1 (Switch.port_occupancy sw ~port:1);
  check_conservation sw

(* A star topology delivers byte-exact PDUs from every leaf to the hub
   host, each on its own freshly allocated VC. *)
let test_star_end_to_end () =
  let eng, topo =
    Network.star ~n:3
      ~switch:
        {
          Switch.default_config with
          Switch.queue_cells = 512;
          Switch.forward_latency = Time.us 1;
        }
      ()
  in
  let dst = Network.host topo 0 in
  let got = Array.make 3 0 in
  let senders = [ 1; 2 ] in
  List.iter
    (fun src ->
      let vc = Network.open_vc topo ~src ~dst:0 in
      let template = Fault_soak.fill_pattern ~msg:src ~len:6000 in
      Demux.bind dst.Host.demux ~vci:vc.Network.dst_vci
        ~name:(Printf.sprintf "sink%d" src) (fun ~vci:_ msg ->
          let data = Msg.read_all msg in
          if not (Bytes.equal data template) then
            Alcotest.failf "host %d delivered a corrupt PDU" src;
          got.(src) <- got.(src) + 1;
          Msg.dispose msg);
      let sender = Network.host topo src in
      Process.spawn eng ~name:(Printf.sprintf "tx%d" src) (fun () ->
          for _ = 1 to 4 do
            let m = Msg.alloc sender.Host.vs ~len:6000 () in
            Msg.blit_into m ~off:0 ~src:template;
            Driver.send sender.Host.driver ~vci:vc.Network.src_vci m;
            Process.sleep eng (Time.us 300)
          done))
    senders;
  Engine.run ~until:(Time.ms 20) eng;
  List.iter
    (fun src ->
      Alcotest.(check int)
        (Printf.sprintf "host %d delivered all PDUs" src)
        4 got.(src))
    senders;
  let s = Switch.stats topo.Network.switches.(0) in
  Alcotest.(check int) "fabric dropped nothing" 0
    (s.Switch.dropped_overflow + s.Switch.dropped_no_route);
  Alcotest.(check bool)
    (Printf.sprintf "fabric carried the cells (%d)" s.Switch.cells_in)
    true
    (s.Switch.cells_in > 0);
  check_conservation topo.Network.switches.(0)

(* A two-switch chain: the circuit crosses the trunk with a VCI rewrite
   at each hop, in both directions. *)
let test_chain_across_trunk () =
  let eng, topo =
    Network.chain ~n:4
      ~switch:
        {
          Switch.default_config with
          Switch.queue_cells = 512;
          Switch.forward_latency = Time.us 1;
        }
      ()
  in
  Alcotest.(check int) "four hosts" 4 (Network.nhosts topo);
  (* Host 0 lives on switch 0, host 3 on switch 1. *)
  Alcotest.(check int) "host 0 on switch 0" 0 topo.Network.endpoints.(0).Network.sw;
  Alcotest.(check int) "host 3 on switch 1" 1 topo.Network.endpoints.(3).Network.sw;
  let vc_there = Network.open_vc topo ~src:0 ~dst:3 in
  let vc_back = Network.open_vc topo ~src:3 ~dst:0 in
  Alcotest.(check bool) "fresh VCIs per circuit" true
    (vc_there.Network.src_vci <> vc_back.Network.src_vci);
  let run_dir ~src ~dst ~vc ~msg_id =
    let template = Fault_soak.fill_pattern ~msg:msg_id ~len:5000 in
    let got = ref 0 in
    let d = Network.host topo dst in
    Demux.bind d.Host.demux ~vci:vc.Network.dst_vci
      ~name:(Printf.sprintf "sink%d-%d" src dst) (fun ~vci:_ msg ->
        if not (Bytes.equal (Msg.read_all msg) template) then
          Alcotest.failf "%d->%d delivered a corrupt PDU" src dst;
        incr got;
        Msg.dispose msg);
    let s = Network.host topo src in
    Process.spawn eng ~name:(Printf.sprintf "tx%d-%d" src dst) (fun () ->
        for _ = 1 to 3 do
          let m = Msg.alloc s.Host.vs ~len:5000 () in
          Msg.blit_into m ~off:0 ~src:template;
          Driver.send s.Host.driver ~vci:vc.Network.src_vci m;
          Process.sleep eng (Time.us 400)
        done);
    got
  in
  let there = run_dir ~src:0 ~dst:3 ~vc:vc_there ~msg_id:1 in
  let back = run_dir ~src:3 ~dst:0 ~vc:vc_back ~msg_id:2 in
  Engine.run ~until:(Time.ms 25) eng;
  Alcotest.(check int) "0 -> 3 across the trunk" 3 !there;
  Alcotest.(check int) "3 -> 0 across the trunk" 3 !back;
  Array.iter
    (fun sw ->
      Alcotest.(check int)
        (Printf.sprintf "switch %s dropped nothing" (Switch.name sw))
        0
        ((Switch.stats sw).Switch.dropped_overflow
        + (Switch.stats sw).Switch.dropped_no_route);
      check_conservation sw)
    topo.Network.switches

(* The seeded 3-sender incast: a queue small enough to drop under the
   synchronized burst, with the experiment's own accounting — switch
   conservation, host invariants at quiescence, and every lost PDU
   traceable to a switch drop plus a receiver-side recovery event. *)
let test_incast_conservation () =
  let o = Incast.run ~senders:3 ~queue_cells:24 ~rounds:4 ~seed:5 () in
  Alcotest.(check (list string)) "accounting clean" [] o.Incast.violations;
  Alcotest.(check int) "offered load" 12 o.Incast.offered_pdus;
  Alcotest.(check bool)
    (Printf.sprintf "the bottleneck bit: %d cell drops" o.Incast.switch_dropped)
    true
    (o.Incast.switch_dropped > 0);
  Alcotest.(check bool)
    (Printf.sprintf "delivered %d <= offered" o.Incast.delivered_pdus)
    true
    (o.Incast.delivered_pdus <= o.Incast.offered_pdus);
  Alcotest.(check int) "nothing corrupt" 0 o.Incast.corrupted_delivered;
  Alcotest.(check int) "switch queues drained" 0 o.Incast.residual_queued;
  (* Same seed, same run: the whole fabric is deterministic. *)
  let o' = Incast.run ~senders:3 ~queue_cells:24 ~rounds:4 ~seed:5 () in
  Alcotest.(check int) "deterministic deliveries" o.Incast.delivered_pdus
    o'.Incast.delivered_pdus;
  Alcotest.(check int) "deterministic drops" o.Incast.switch_dropped
    o'.Incast.switch_dropped

(* And a queue big enough for the burst: zero loss, full delivery. *)
let test_incast_lossless_when_provisioned () =
  let o = Incast.run ~senders:3 ~queue_cells:192 ~rounds:4 ~seed:5 () in
  Alcotest.(check (list string)) "accounting clean" [] o.Incast.violations;
  Alcotest.(check int) "no switch drops" 0 o.Incast.switch_dropped;
  Alcotest.(check int) "everything delivered" o.Incast.offered_pdus
    o.Incast.delivered_pdus

(* The switch datapath under explored same-instant interleavings of
   ingress and drain: conservation and VCI rewriting hold on every
   schedule, liveness at the end of each. *)
let test_explore_switch_datapath () =
  match Explore.dfs ~max_depth:8 ~max_runs:512 (Scenarios.switch_datapath ())
  with
  | Some f, _ ->
      Alcotest.failf "unexpected counterexample %s"
        (Format.asprintf "%a" Explore.pp_failure f)
  | None, runs ->
      Alcotest.(check bool)
        (Printf.sprintf "explored several schedules (%d)" runs)
        true (runs > 1)

(* The egress drain batch is a simulator-speed knob only: the same
   overloaded workload (small queue, bursty senders, real drops) must
   produce bit-identical outcomes — deliveries with timestamps, every
   switch counter, final clock and event count — for any batch size. *)
let test_drain_batch_invisible () =
  let outcome drain_batch =
    let eng, topo =
      Network.star ~n:3
        ~switch:
          {
            Switch.default_config with
            Switch.queue_cells = 24;
            Switch.drain_batch = drain_batch;
          }
        ()
    in
    let dst = Network.host topo 0 in
    let deliveries = ref [] in
    List.iter
      (fun src ->
        let vc = Network.open_vc topo ~src ~dst:0 in
        Demux.bind dst.Host.demux ~vci:vc.Network.dst_vci
          ~name:(Printf.sprintf "sink%d" src) (fun ~vci:_ msg ->
            deliveries := (src, Engine.now eng) :: !deliveries;
            Msg.dispose msg);
        let sender = Network.host topo src in
        Process.spawn eng ~name:(Printf.sprintf "tx%d" src) (fun () ->
            for _ = 1 to 5 do
              let m = Msg.alloc sender.Host.vs ~len:4000 () in
              Msg.blit_into m ~off:0
                ~src:(Fault_soak.fill_pattern ~msg:src ~len:4000);
              Driver.send sender.Host.driver ~vci:vc.Network.src_vci m;
              Process.sleep eng (Time.us 150)
            done))
      [ 1; 2 ];
    Engine.run ~until:(Time.ms 15) eng;
    check_conservation topo.Network.switches.(0);
    let s = Switch.stats topo.Network.switches.(0) in
    ( List.rev !deliveries,
      ( s.Switch.cells_in,
        s.Switch.forwarded,
        s.Switch.dropped_overflow,
        s.Switch.max_occupancy ),
      Engine.now eng,
      Engine.events_dispatched eng )
  in
  let base = outcome 1 in
  let _, (_, _, dropped, _), _, _ = base in
  Alcotest.(check bool)
    (Printf.sprintf "workload overloads the queue (%d drops)" dropped)
    true (dropped > 0);
  List.iter
    (fun b ->
      if outcome b <> base then
        Alcotest.failf "drain_batch=%d changed simulation outcomes" b)
    [ 3; 8; 64 ]

let suite =
  [
    Alcotest.test_case "routing rewrites and drops unroutable cells" `Quick
      test_routing_rewrite;
    Alcotest.test_case "overflow drops are accounted" `Quick
      test_overflow_drop_accounting;
    Alcotest.test_case "star topology delivers end to end" `Quick
      test_star_end_to_end;
    Alcotest.test_case "chain crosses the trunk both ways" `Quick
      test_chain_across_trunk;
    Alcotest.test_case "incast conserves every cell" `Quick
      test_incast_conservation;
    Alcotest.test_case "provisioned incast is lossless" `Quick
      test_incast_lossless_when_provisioned;
    Alcotest.test_case "explored switch datapath stays clean" `Quick
      test_explore_switch_datapath;
    Alcotest.test_case "drain batch size is invisible to outcomes" `Quick
      test_drain_batch_invisible;
  ]
