(* Schedule-exploration checker: the engine's pluggable same-instant
   ordering, bounded DFS / seeded random walks over host<->board queue
   scenarios, and deterministic counterexample replay. The headline
   property: a seeded protocol mutation that every FIFO-schedule test
   misses is caught by exploration, and its schedule string replays the
   failure exactly. *)

module Schedule = Osiris_check.Schedule
module Explore = Osiris_check.Explore
module Scenarios = Osiris_check.Scenarios
module Desc_queue = Osiris_board.Desc_queue

(* Bounds are env-tunable (OSIRIS_EXPLORE_DEPTH / OSIRIS_EXPLORE_SEED)
   so CI can pin them and a developer chasing a race can crank them. *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> int_of_string (String.trim s)
  | _ -> default

let depth = env_int "OSIRIS_EXPLORE_DEPTH" 10
let seed = env_int "OSIRIS_EXPLORE_SEED" 7

let test_schedule_roundtrip () =
  List.iter
    (fun sched ->
      Alcotest.(check (list int))
        (Printf.sprintf "of_string (to_string %s)" (Schedule.to_string sched))
        sched
        (Schedule.of_string (Schedule.to_string sched)))
    [ []; [ 0 ]; [ 0; 2; 1 ]; [ 3; 0; 0; 1 ] ];
  Alcotest.(check string) "empty prints as -" "-" (Schedule.to_string []);
  Alcotest.(check (list int)) "- parses as empty" [] (Schedule.of_string "-");
  List.iter
    (fun bad ->
      match Schedule.of_string bad with
      | exception Failure _ -> ()
      | s ->
          Alcotest.failf "bad schedule %S parsed as %s" bad
            (Schedule.to_string s))
    [ "0.x.1"; "-1"; "0..1" ]

(* The paper's claim, mechanized: under the real discipline the queue
   invariants hold on EVERY explored interleaving, in both directions
   and both locking modes. *)
let test_clean_scenarios_explore_clean () =
  List.iter
    (fun (name, scenario) ->
      match Explore.dfs ~max_depth:depth ~max_runs:512 scenario with
      | Some f, _ ->
          Alcotest.failf "%s: unexpected counterexample %s" name
            (Format.asprintf "%a" Explore.pp_failure f)
      | None, runs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: explored several schedules (%d)" name runs)
            true (runs > 1))
    [
      ("h2b lock-free", Scenarios.host_to_board ());
      ("b2h lock-free", Scenarios.board_to_host ());
      ("h2b spin-lock", Scenarios.host_to_board ~locking:Desc_queue.Spin_lock ());
      ("b2h spin-lock", Scenarios.board_to_host ~locking:Desc_queue.Spin_lock ());
    ]

(* The transport sender/receiver state machines hold their invariants —
   window bounds, byte and transmission conservation, timer discipline —
   on every explored interleaving of data delivery, ack delivery and the
   retransmission timer, through a scripted segment loss and ack loss,
   and every schedule still delivers the stream byte-exact. *)
let test_transport_explores_clean () =
  let scenario = Scenarios.transport () in
  (match Explore.dfs ~max_depth:depth ~max_runs:512 ~max_events:20_000 scenario with
  | Some f, _ ->
      Alcotest.failf "transport DFS: unexpected counterexample %s"
        (Format.asprintf "%a" Explore.pp_failure f)
  | None, runs ->
      Alcotest.(check bool)
        (Printf.sprintf "transport DFS explored several schedules (%d)" runs)
        true (runs > 1));
  match Explore.random_walks ~seed ~runs:64 ~max_events:20_000 scenario with
  | Some f, _ ->
      Alcotest.failf "transport random walks: unexpected counterexample %s"
        (Format.asprintf "%a" Explore.pp_failure f)
  | None, _ -> ()

let torn () =
  Scenarios.host_to_board ~mutation:Desc_queue.Torn_tail_publish ()

(* Why this subsystem exists: the torn tail publication heals by
   quiescence, so a plain engine run with end-of-run checks — the shape
   of every pre-existing test — never sees it... *)
let test_torn_publish_missed_by_quiescence_checks () =
  let eng = Osiris_sim.Engine.create () in
  let checks = (torn ()) eng in
  Osiris_sim.Engine.run ~max_events:10_000 eng;
  Alcotest.(check (list string)) "invariants clean at quiescence" []
    (checks.Explore.check ());
  Alcotest.(check (list string)) "end-of-run checks clean" []
    (checks.Explore.at_end ())

(* ...but bounded DFS catches it at a choice point, and the recorded
   schedule replays the identical failure after a round-trip through its
   string form. *)
let test_torn_publish_caught_and_replayed () =
  match Explore.dfs ~max_depth:depth ~max_runs:2048 (torn ()) with
  | None, runs ->
      Alcotest.failf "DFS missed the torn tail publication (%d runs)" runs
  | Some f, _ -> (
      (match f.Explore.at with
      | `Choice_point _ -> ()
      | `End ->
          Alcotest.fail "expected a choice-point violation, got an end check");
      Alcotest.(check bool) "violations non-empty" true
        (f.Explore.violations <> []);
      let sched =
        Schedule.of_string (Schedule.to_string f.Explore.schedule)
      in
      match Explore.replay (torn ()) sched with
      | None ->
          Alcotest.failf "schedule %s did not replay the failure"
            (Schedule.to_string sched)
      | Some f' ->
          Alcotest.(check (list string)) "same violations on replay"
            f.Explore.violations f'.Explore.violations;
          Alcotest.(check bool) "same location" true
            (f.Explore.at = f'.Explore.at))

(* Random walks find the same bug from a pinned seed, and their recorded
   schedule replays deterministically too. *)
let test_torn_publish_found_by_random_walks () =
  match Explore.random_walks ~seed ~runs:256 (torn ()) with
  | None, runs ->
      Alcotest.failf "random walks missed the torn publication (%d runs)" runs
  | Some f, _ -> (
      match Explore.replay (torn ()) f.Explore.schedule with
      | None -> Alcotest.fail "random-walk counterexample did not replay"
      | Some f' ->
          Alcotest.(check (list string)) "replay matches" f.Explore.violations
            f'.Explore.violations)

(* The unsafe-direction shadow refresh (stale toward "emptier", which the
   paper's argument forbids) is also caught within the bound. *)
let test_eager_shadow_caught () =
  let scenario =
    Scenarios.host_to_board ~mutation:Desc_queue.Eager_shadow_tail ()
  in
  match Explore.dfs ~max_depth:depth ~max_runs:2048 scenario with
  | None, runs ->
      Alcotest.failf "DFS missed the eager shadow refresh (%d runs)" runs
  | Some f, _ ->
      Alcotest.(check bool) "violations non-empty" true
        (f.Explore.violations <> [])

let suite =
  [
    Alcotest.test_case "schedule strings round-trip" `Quick
      test_schedule_roundtrip;
    Alcotest.test_case "clean scenarios explore clean" `Quick
      test_clean_scenarios_explore_clean;
    Alcotest.test_case "transport state machine explores clean" `Quick
      test_transport_explores_clean;
    Alcotest.test_case "torn publish: quiescence checks miss it" `Quick
      test_torn_publish_missed_by_quiescence_checks;
    Alcotest.test_case "torn publish: DFS catches it, replay matches" `Quick
      test_torn_publish_caught_and_replayed;
    Alcotest.test_case "torn publish: random walks find it" `Quick
      test_torn_publish_found_by_random_walks;
    Alcotest.test_case "eager shadow refresh caught" `Quick
      test_eager_shadow_caught;
  ]
