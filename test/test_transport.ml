(* Reliable windowed transport: RTO estimator, sender/receiver state
   machines driven directly, and end-to-end transfers over the host
   stack and switch fabric — lossless, lossy, and congestion-marked. *)

module Engine = Osiris_sim.Engine
module Time = Osiris_sim.Time
module Atm_link = Osiris_link.Atm_link
module Switch = Osiris_switch.Switch
module Network = Osiris_core.Network
module Rto = Osiris_transport.Rto
module Sender = Osiris_transport.Sender
module Receiver = Osiris_transport.Receiver
module Transport = Osiris_transport.Transport

let pattern len = Bytes.init len (fun i -> Char.chr (((i * 31) + 7) land 0xff))

let assert_clean what = function
  | [] -> ()
  | errs -> Alcotest.failf "%s invariants: %s" what (String.concat "; " errs)

(* --- Rto ----------------------------------------------------------- *)

let test_rto_estimator () =
  let r = Rto.create ~init:(Time.ms 1) ~min:(Time.us 200) ~max:(Time.ms 100) in
  Alcotest.(check int) "initial rto" (Time.ms 1) (Rto.current r);
  Rto.sample r (Time.us 400);
  (* first sample: srtt = r, rttvar = r/2, rto = srtt + 4*rttvar = 3r *)
  Alcotest.(check (option int)) "srtt" (Some (Time.us 400)) (Rto.srtt r);
  Alcotest.(check int) "rto after first sample" (Time.us 1200) (Rto.current r);
  (* steady identical samples shrink rttvar toward 0; the floor holds *)
  for _ = 1 to 200 do
    Rto.sample r (Time.us 400)
  done;
  Alcotest.(check (option int)) "srtt converged" (Some (Time.us 400))
    (Rto.srtt r);
  Alcotest.(check bool) "rto at floor" true (Rto.current r <= Time.us 410)

let test_rto_backoff_karn () =
  let r = Rto.create ~init:(Time.ms 1) ~min:(Time.us 200) ~max:(Time.ms 100) in
  Rto.sample r (Time.us 500);
  let base = Rto.current r in
  Rto.backoff r;
  Alcotest.(check int) "doubled" (2 * base) (Rto.current r);
  Rto.backoff r;
  Alcotest.(check int) "doubled twice" (4 * base) (Rto.current r);
  for _ = 1 to 40 do
    Rto.backoff r
  done;
  Alcotest.(check int) "capped at max" (Time.ms 100) (Rto.current r);
  (* Karn: a fresh unambiguous sample resets the backoff *)
  Rto.sample r (Time.us 500);
  Alcotest.(check bool) "backoff reset by sample" true
    (Rto.current r < Time.ms 3)

(* --- Sender core (no hosts): drive acks by hand -------------------- *)

type sent = { seq : int; rtx : bool }

let test_sender_window_and_completion () =
  let eng = Engine.create () in
  let log = ref [] in
  let config = { Sender.default_config with Sender.init_cwnd = 2 } in
  let s =
    Sender.create eng ~config
      ~tx:(fun ~seq ~retransmit _ -> log := { seq; rtx = retransmit } :: !log)
      ()
  in
  Sender.offer s (pattern (5 * 1024));
  (* cwnd = 2: only segments 0 and 1 go out *)
  Alcotest.(check int) "initial burst respects cwnd" 2 (List.length !log);
  assert_clean "sender" (Sender.invariants s);
  Sender.on_ack s ~ack:1 ~sack:0 ~ece:false;
  Sender.on_ack s ~ack:2 ~sack:0 ~ece:false;
  (* slow start: each new ack grows cwnd, more segments flow *)
  Alcotest.(check bool) "slow start opened the window" true
    (List.length !log >= 5);
  Sender.on_ack s ~ack:5 ~sack:0 ~ece:false;
  Sender.close s;
  Alcotest.(check bool) "finished once all acked" true
    (Sender.state s = Sender.Finished);
  assert_clean "sender" (Sender.invariants s);
  let st = Sender.stats s in
  Alcotest.(check int) "no retransmits" 0 st.Sender.retransmits;
  Alcotest.(check int) "all five unique" 5 st.Sender.unique_sent

let test_sender_fast_retransmit () =
  let eng = Engine.create () in
  let log = ref [] in
  let config =
    { Sender.default_config with Sender.init_cwnd = 8; dup_ack_threshold = 3 }
  in
  let s =
    Sender.create eng ~config
      ~tx:(fun ~seq ~retransmit _ -> log := { seq; rtx = retransmit } :: !log)
      ()
  in
  Sender.offer s (pattern (8 * 1024));
  (* segment 0 lost; 1..3 arrive: three sacked acks above the hole *)
  Sender.on_ack s ~ack:0 ~sack:0b001 ~ece:false;
  Sender.on_ack s ~ack:0 ~sack:0b011 ~ece:false;
  let cwnd_before = Sender.cwnd s in
  Sender.on_ack s ~ack:0 ~sack:0b111 ~ece:false;
  let rtx = List.filter (fun e -> e.rtx) !log in
  Alcotest.(check (list int)) "segment 0 fast-retransmitted" [ 0 ]
    (List.map (fun e -> e.seq) rtx);
  Alcotest.(check bool) "multiplicative decrease" true
    (Sender.cwnd s < cwnd_before);
  Alcotest.(check int) "one fast retransmit" 1
    (Sender.stats s).Sender.fast_retransmits;
  (* the retransmission fills the hole: cumulative ack jumps *)
  Sender.on_ack s ~ack:4 ~sack:0 ~ece:false;
  Alcotest.(check int) "window slid" 4 (Sender.snd_una s);
  assert_clean "sender" (Sender.invariants s)

let test_sender_rto_and_failure () =
  let eng = Engine.create () in
  let log = ref [] in
  let config =
    { Sender.default_config with Sender.init_cwnd = 4; max_retries = 3 }
  in
  let s =
    Sender.create eng ~config
      ~tx:(fun ~seq ~retransmit _ -> log := { seq; rtx = retransmit } :: !log)
      ()
  in
  Sender.offer s (pattern 2048);
  (* no acks ever arrive: timeouts back off, then the sender fails *)
  Engine.run ~until:(Time.s 2) eng;
  (match Sender.state s with
  | Sender.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed after max_retries timeouts");
  let st = Sender.stats s in
  Alcotest.(check int) "exactly max_retries+1 timeouts" 4 st.Sender.timeouts;
  (* One tail probe fires before the first RTO (then [probe_pending]
     suppresses further probing until an ack, which never comes); after
     that, exactly one retransmission per timeout. *)
  Alcotest.(check int) "one tail probe" 1 st.Sender.tail_probes;
  Alcotest.(check int) "one retransmission per timeout plus the probe" 4
    st.Sender.retransmits;
  assert_clean "sender (failed)" (Sender.invariants s)

let test_sender_ece_cuts_once_per_rtt () =
  let eng = Engine.create () in
  let config = { Sender.default_config with Sender.init_cwnd = 16 } in
  let s =
    Sender.create eng ~config ~tx:(fun ~seq:_ ~retransmit:_ _ -> ()) ()
  in
  Sender.offer s (pattern (20 * 1024));
  let c0 = Sender.cwnd s in
  Sender.on_ack s ~ack:1 ~sack:0 ~ece:true;
  let c1 = Sender.cwnd s in
  Alcotest.(check bool) "ECE cut cwnd" true (c1 < c0);
  (* same instant: the hold-off suppresses a second cut; growth resumes *)
  Sender.on_ack s ~ack:2 ~sack:0 ~ece:true;
  Alcotest.(check bool) "second ECE within hold is ignored" true
    (Sender.cwnd s >= c1);
  Alcotest.(check int) "both echoes counted" 2 (Sender.stats s).Sender.ece_acks;
  assert_clean "sender" (Sender.invariants s)

(* --- Receiver core -------------------------------------------------- *)

let test_receiver_reorder_and_sack () =
  let delivered = ref [] in
  let acks = ref [] in
  let r =
    Receiver.create ~window:8
      ~deliver:(fun ~seq p -> delivered := (seq, Bytes.length p) :: !delivered)
      ~tx_ack:(fun ~ack ~sack ~ece -> acks := (ack, sack, ece) :: !acks)
      ()
  in
  Receiver.on_data r ~seq:1 ~marked:false (pattern 10);
  Alcotest.(check (list (pair int int))) "nothing delivered yet" []
    !delivered;
  (match !acks with
  | [ (0, sack, false) ] ->
      Alcotest.(check int) "sack reports seq 1" 0b1 sack
  | _ -> Alcotest.fail "expected one ack with a sack bit");
  Receiver.on_data r ~seq:0 ~marked:false (pattern 10);
  Alcotest.(check (list (pair int int))) "in-order flush" [ (1, 10); (0, 10) ]
    !delivered;
  (match !acks with
  | (2, 0, false) :: _ -> ()
  | _ -> Alcotest.fail "cumulative ack should reach 2");
  (* duplicate and out-of-window arrivals are counted, not delivered *)
  Receiver.on_data r ~seq:0 ~marked:false (pattern 10);
  Receiver.on_data r ~seq:100 ~marked:false (pattern 10);
  let st = Receiver.stats r in
  Alcotest.(check int) "duplicate counted" 1 st.Receiver.duplicates;
  Alcotest.(check int) "out-of-window counted" 1 st.Receiver.out_of_window;
  Alcotest.(check int) "still two delivered" 2 st.Receiver.delivered_segs;
  (* the congestion mark is echoed on exactly the marked PDU's ack *)
  Receiver.on_data r ~seq:2 ~marked:true (pattern 10);
  (match !acks with
  | (3, 0, true) :: _ -> ()
  | _ -> Alcotest.fail "marked PDU's ack should carry ECE");
  assert_clean "receiver" (Receiver.invariants r)

(* --- End to end over the fabric ------------------------------------ *)

let total_bytes = 64 * 1024

let run_transfer ?(until = Time.ms 200) ?(switch = Switch.default_config)
    ?(config = Sender.default_config) ~twist () =
  let eng, topo = Network.star ~n:2 ~switch () in
  let got = Buffer.create total_bytes in
  let conn =
    Transport.connect_via topo ~src:0 ~dst:1
      ~config
      ~deliver:(fun b -> Buffer.add_bytes got b)
      ()
  in
  twist eng topo;
  Transport.send conn (pattern total_bytes);
  Transport.close conn;
  Engine.run ~until eng;
  (eng, topo, conn, got)

let check_byte_exact conn got =
  (match Transport.state conn with
  | Sender.Finished -> ()
  | Sender.Active -> Alcotest.fail "transfer did not complete"
  | Sender.Failed r -> Alcotest.failf "transfer failed: %s" r);
  Alcotest.(check int) "every byte delivered exactly once" total_bytes
    (Buffer.length got);
  Alcotest.(check bool) "delivered bytes match" true
    (Bytes.equal (Buffer.to_bytes got) (pattern total_bytes));
  assert_clean "transport" (Transport.invariants conn);
  Alcotest.(check int) "no garbled PDUs" 0 (Transport.garbled conn)

(* The default 32-cell switch queue drops under even modest bursts (one
   1 KiB segment is ~22 cells), so a provisioned-lossless fabric needs a
   queue deeper than window * cells-per-segment. *)
let deep_queue = { Switch.default_config with Switch.queue_cells = 1024 }

let test_end_to_end_lossless () =
  let _, _, conn, got =
    run_transfer ~switch:deep_queue ~twist:(fun _ _ -> ()) ()
  in
  check_byte_exact conn got;
  let st = Sender.stats (Transport.sender conn) in
  Alcotest.(check int) "lossless: no retransmits" 0 st.Sender.retransmits;
  Alcotest.(check bool) "rtt was sampled" true (st.Sender.rtt_samples > 0)

let test_end_to_end_lossy () =
  (* 1% cell loss on the sender's uplink: a ~22-cell segment survives
     with p ~ 0.8, so every transfer exercises reassembly failure and
     transport recovery without exhausting max_retries *)
  let _, _, conn, got =
    run_transfer ~until:(Time.s 2) ~switch:deep_queue
      ~twist:(fun _ topo ->
        let ep = topo.Network.endpoints.(0) in
        Atm_link.set_drop_prob ep.Network.to_fabric 0.01)
      ()
  in
  check_byte_exact conn got;
  let st = Sender.stats (Transport.sender conn) in
  Alcotest.(check bool) "losses forced retransmissions" true
    (st.Sender.retransmits > 0)

let test_end_to_end_marking () =
  (* A queue shallow enough to mark but deep enough not to drop: the
     receiver sees marked PDUs, the sender sees ECE echoes and cuts *)
  let switch =
    { Switch.default_config with Switch.queue_cells = 64; mark_threshold = 4 }
  in
  let _, topo, conn, got = run_transfer ~switch ~twist:(fun _ _ -> ()) () in
  check_byte_exact conn got;
  let sw = topo.Network.switches.(0) in
  let sst = Switch.stats sw in
  Alcotest.(check bool) "switch marked cells" true (sst.Switch.marked > 0);
  let rst = Receiver.stats (Transport.receiver conn) in
  Alcotest.(check bool) "marks reached the receiver" true
    (rst.Receiver.marked_pdus > 0);
  let st = Sender.stats (Transport.sender conn) in
  Alcotest.(check bool) "ECE echoed to the sender" true
    (st.Sender.ece_acks > 0);
  Alcotest.(check bool) "sender reacted" true (st.Sender.cwnd_cuts > 0);
  (* mark conservation holds at the end too *)
  let parts = Switch.mark_conservation sw in
  let sum = List.fold_left (fun a (_, v) -> a + v) 0 parts in
  Alcotest.(check int) "mark conservation" sst.Switch.marked sum

let test_end_to_end_dead_fabric_fails () =
  (* Output port to the receiver goes down and stays down: the sender
     must give up with Failed, not hang or livelock *)
  let eng, topo = Network.star ~n:2 () in
  let conn =
    Transport.connect_via topo ~src:0 ~dst:1
      ~config:{ Sender.default_config with Sender.max_retries = 5 }
      ~deliver:(fun _ -> ())
      ()
  in
  Switch.set_port_state topo.Network.switches.(0)
    ~port:topo.Network.endpoints.(1).Network.port false;
  Transport.send conn (pattern 8192);
  Transport.close conn;
  Engine.run ~until:(Time.s 5) eng;
  (match Transport.state conn with
  | Sender.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed against a dead fabric");
  assert_clean "transport (failed)" (Transport.invariants conn)

(* The congestion soak contract (EXPERIMENTS.md "Congestion sweep"):
   every seeded fault plan — random host-link faults plus a port-flap
   storm on the receiver's switch port and a trunk-loss burst — ends
   with every stream byte-exact, retransmission bounded below the
   offered bytes, and zero invariant violations. A failing seed
   reproduces exactly from its number. *)
let test_congestion_soak () =
  let results = Osiris_experiments.Congestion.soak () in
  Alcotest.(check int) "all seeds ran" 8 (List.length results);
  Alcotest.(check (list string)) "soak contract holds" []
    (Osiris_experiments.Congestion.soak_violations results)

let suite =
  [
    Alcotest.test_case "rto estimator" `Quick test_rto_estimator;
    Alcotest.test_case "rto backoff + karn" `Quick test_rto_backoff_karn;
    Alcotest.test_case "sender window/completion" `Quick
      test_sender_window_and_completion;
    Alcotest.test_case "sender fast retransmit" `Quick
      test_sender_fast_retransmit;
    Alcotest.test_case "sender rto + failure" `Quick
      test_sender_rto_and_failure;
    Alcotest.test_case "sender ECE once per rtt" `Quick
      test_sender_ece_cuts_once_per_rtt;
    Alcotest.test_case "receiver reorder/sack/echo" `Quick
      test_receiver_reorder_and_sack;
    Alcotest.test_case "end-to-end lossless" `Quick test_end_to_end_lossless;
    Alcotest.test_case "end-to-end lossy" `Quick test_end_to_end_lossy;
    Alcotest.test_case "end-to-end marking" `Quick test_end_to_end_marking;
    Alcotest.test_case "dead fabric fails cleanly" `Quick
      test_end_to_end_dead_fabric_fails;
    Alcotest.test_case "multi-seed congestion fault soak" `Slow
      test_congestion_soak;
  ]
