(* Tests for the striped physical link: per-link FIFO order, skew-class
   reordering, serialization rate, error injection. *)

open Osiris_sim
module Atm_link = Osiris_link.Atm_link
module Cell = Osiris_atm.Cell
module Sar = Osiris_atm.Sar
module Rng = Osiris_util.Rng

let cells_of_pdu ?(n = 400) ?(nlinks = 4) () =
  Sar.segment ~vci:3 ~nlinks (Bytes.init n (fun i -> Char.chr (i land 0xff)))

let collect eng link n =
  let out = ref [] in
  Process.spawn eng ~name:"rx" (fun () ->
      for _ = 1 to n do
        out := Atm_link.recv link :: !out
      done);
  out

let test_no_skew_in_order () =
  let eng = Engine.create () in
  let link =
    Atm_link.create eng (Rng.create ~seed:1) Atm_link.default_config
  in
  let cells = cells_of_pdu () in
  let out = collect eng link (List.length cells) in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  Engine.run eng;
  let seqs = List.map (fun (_, c) -> c.Cell.seq) (List.rev !out) in
  Alcotest.(check (list int)) "arrival order = send order"
    (List.map (fun (c : Cell.t) -> c.Cell.seq) cells)
    seqs

let test_skew_reorders_across_links_only () =
  let eng = Engine.create () in
  let cfg =
    {
      Atm_link.default_config with
      Atm_link.skew = [| 0; 8000; 16000; 24000 |];
    }
  in
  let link = Atm_link.create eng (Rng.create ~seed:1) cfg in
  let cells = cells_of_pdu () in
  let out = collect eng link (List.length cells) in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  Engine.run eng;
  let arrivals = List.rev !out in
  (* Global order is perturbed... *)
  Alcotest.(check bool) "reordering observed" true
    ((Atm_link.stats link).Atm_link.reordered > 0);
  (* ...but each link's sub-stream is still FIFO. *)
  for l = 0 to 3 do
    let seqs =
      List.filter_map
        (fun (link', c) -> if link' = l then Some c.Cell.seq else None)
        arrivals
    in
    Alcotest.(check (list int))
      (Printf.sprintf "link %d FIFO" l)
      (List.sort compare seqs) seqs
  done

let test_aggregate_rate () =
  (* 4 x 155.52 Mb/s: 1000 cells of 53 bytes take ~1000/4 cell times. *)
  let eng = Engine.create () in
  let link =
    Atm_link.create eng (Rng.create ~seed:1)
      { Atm_link.default_config with Atm_link.rx_fifo_cells = 2000 }
  in
  let pdu = Bytes.make 10000 'x' in
  let cells = Sar.segment ~vci:3 ~nlinks:4 pdu in
  let ncells = List.length cells in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  Engine.run eng;
  (* Serialization finished; expected: ceil(n/4) cell times + pipeline. *)
  let cell_time = 53 * 8 * 1_000_000_000 / 155_520_000 in
  let expected = (((ncells + 3) / 4) + 2) * cell_time + 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "duration %d <= %d" (Engine.now eng) expected)
    true
    (Engine.now eng <= expected);
  Alcotest.(check int) "oc12 aggregate"
    516
    (int_of_float (Atm_link.oc12_aggregate Atm_link.default_config))

let test_fifo_overflow_drops () =
  let eng = Engine.create () in
  let cfg = { Atm_link.default_config with Atm_link.rx_fifo_cells = 4 } in
  let link = Atm_link.create eng (Rng.create ~seed:1) cfg in
  let cells = cells_of_pdu ~n:4000 () in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  (* no receiver: the 4-cell FIFO overflows *)
  Engine.run eng;
  let st = Atm_link.stats link in
  Alcotest.(check bool) "drops counted" true (st.Atm_link.dropped_fifo > 0);
  Alcotest.(check int) "conservation" (Atm_link.offered link)
    (List.fold_left (fun a (_, n) -> a + n) 0 (Atm_link.conservation link))

let test_corruption_injection () =
  let eng = Engine.create () in
  let cfg = { Atm_link.default_config with Atm_link.corrupt_prob = 1.0 } in
  let link = Atm_link.create eng (Rng.create ~seed:1) cfg in
  let cells = cells_of_pdu ~n:100 () in
  let out = collect eng link (List.length cells) in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  Engine.run eng;
  Alcotest.(check int) "all corrupted"
    (List.length cells)
    (Atm_link.stats link).Atm_link.corrupted;
  (* Corruption touches payload bytes, never the header fields. *)
  List.iter
    (fun (_, (c : Cell.t)) ->
      Alcotest.(check int) "vci intact" 3 c.Cell.vci)
    !out

let test_drop_injection () =
  let eng = Engine.create () in
  let cfg = { Atm_link.default_config with Atm_link.drop_prob = 0.5 } in
  let link = Atm_link.create eng (Rng.create ~seed:4) cfg in
  let cells = cells_of_pdu ~n:4000 () in
  Process.spawn eng ~name:"tx" (fun () -> List.iter (Atm_link.send link) cells);
  Engine.run ~until:1_000_000_000 eng;
  let st = Atm_link.stats link in
  let frac =
    float_of_int st.Atm_link.dropped_net /. float_of_int st.Atm_link.cells_sent
  in
  Alcotest.(check bool)
    (Printf.sprintf "drop fraction %.2f near 0.5" frac)
    true
    (frac > 0.4 && frac < 0.6)

let suite =
  [
    Alcotest.test_case "no skew: global order" `Quick test_no_skew_in_order;
    Alcotest.test_case "skew: per-link FIFO only" `Quick
      test_skew_reorders_across_links_only;
    Alcotest.test_case "aggregate serialization rate" `Quick
      test_aggregate_rate;
    Alcotest.test_case "receive FIFO overflow" `Quick test_fifo_overflow_drops;
    Alcotest.test_case "corruption injection" `Quick test_corruption_injection;
    Alcotest.test_case "drop injection" `Quick test_drop_injection;
  ]
