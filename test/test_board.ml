(* Tests for the adaptor: descriptor queues (the §2.1.1 lock-free
   discipline) and the board's transmit/receive machinery. *)

open Osiris_sim
module Board = Osiris_board.Board
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue
module Cell = Osiris_atm.Cell
module Sar = Osiris_atm.Sar
module Phys_mem = Osiris_mem.Phys_mem
module Pbuf = Osiris_mem.Pbuf
module Atm_link = Osiris_link.Atm_link
module Tc = Osiris_bus.Turbochannel
module Rng = Osiris_util.Rng

let mk_queue ?(size = 8) ?(locking = Desc_queue.Lock_free) direction =
  let eng = Engine.create () in
  (eng, Desc_queue.create eng ~size ~direction ~locking
          ~hooks:Desc_queue.free_hooks ())

let d i = Desc.v ~addr:(i * 4096) ~len:100 ~vci:i ()

let in_process eng f =
  let r = ref None in
  Process.spawn eng ~name:"t" (fun () -> r := Some (f ()));
  Engine.run eng;
  Option.get !r

let test_queue_fifo () =
  let eng, q = mk_queue Desc_queue.Host_to_board in
  in_process eng (fun () ->
      for i = 1 to 5 do
        Alcotest.(check bool) "enqueue" true (Desc_queue.host_enqueue q (d i))
      done;
      for i = 1 to 5 do
        match Desc_queue.board_dequeue q with
        | Some x -> Alcotest.(check int) "FIFO order" i x.Desc.vci
        | None -> Alcotest.fail "missing element"
      done;
      Alcotest.(check bool) "drained" true (Desc_queue.is_empty q))

let test_queue_full_empty () =
  let eng, q = mk_queue ~size:4 Desc_queue.Host_to_board in
  in_process eng (fun () ->
      (* size-1 usable slots *)
      Alcotest.(check bool) "1" true (Desc_queue.host_enqueue q (d 1));
      Alcotest.(check bool) "2" true (Desc_queue.host_enqueue q (d 2));
      Alcotest.(check bool) "3" true (Desc_queue.host_enqueue q (d 3));
      Alcotest.(check bool) "full" false (Desc_queue.host_enqueue q (d 4));
      Alcotest.(check bool) "is_full" true (Desc_queue.is_full q);
      ignore (Desc_queue.board_dequeue q);
      Alcotest.(check bool) "space again" true (Desc_queue.host_enqueue q (d 4)))

let test_queue_counters () =
  let eng, q = mk_queue Desc_queue.Host_to_board in
  in_process eng (fun () ->
      for i = 1 to 5 do
        ignore (Desc_queue.host_enqueue q (d i))
      done;
      for _ = 1 to 3 do
        ignore (Desc_queue.board_dequeue q)
      done;
      Alcotest.(check int) "enqueued" 5 (Desc_queue.total_enqueued q);
      Alcotest.(check int) "dequeued" 3 (Desc_queue.total_dequeued q);
      Alcotest.(check int) "count" 2 (Desc_queue.count q))

let test_queue_peek_advance () =
  let eng, q = mk_queue Desc_queue.Host_to_board in
  in_process eng (fun () ->
      for i = 1 to 4 do
        ignore (Desc_queue.host_enqueue q (d i))
      done;
      (match Desc_queue.board_peek q 2 with
      | Some x -> Alcotest.(check int) "peek third" 3 x.Desc.vci
      | None -> Alcotest.fail "peek failed");
      Alcotest.(check int) "peek does not consume" 4 (Desc_queue.count q);
      Desc_queue.board_advance q 3;
      Alcotest.(check int) "advance consumes" 1 (Desc_queue.count q);
      match Desc_queue.board_dequeue q with
      | Some x -> Alcotest.(check int) "remaining" 4 x.Desc.vci
      | None -> Alcotest.fail "lost element")

let test_queue_direction_enforced () =
  let eng, q = mk_queue Desc_queue.Host_to_board in
  in_process eng (fun () ->
      Alcotest.(check bool) "wrong side rejected" true
        (try
           ignore (Desc_queue.host_dequeue q);
           false
         with Invalid_argument _ -> true))

let test_queue_waiting_protocol () =
  let eng, q = mk_queue ~size:8 Desc_queue.Host_to_board in
  in_process eng (fun () ->
      for i = 1 to 7 do
        ignore (Desc_queue.host_enqueue q (d i))
      done;
      Desc_queue.host_set_waiting q;
      Alcotest.(check bool) "not yet half empty" false
        (Desc_queue.board_test_waiting q);
      for _ = 1 to 3 do
        ignore (Desc_queue.board_dequeue q)
      done;
      Alcotest.(check bool) "half empty: interrupt now" true
        (Desc_queue.board_test_waiting q);
      Alcotest.(check bool) "one-shot" false (Desc_queue.board_test_waiting q))

(* PIO accounting: the lock-free discipline's shadow pointers save reads. *)
let test_queue_shadow_saves_reads () =
  let eng, q = mk_queue ~size:32 Desc_queue.Host_to_board in
  in_process eng (fun () ->
      for i = 1 to 16 do
        ignore (Desc_queue.host_enqueue q (d i))
      done;
      let st = Desc_queue.access_stats q in
      Alcotest.(check bool) "shadow hits" true (st.Desc_queue.shadow_hits >= 15);
      (* Each enqueue writes descriptor words + head pointer only. *)
      Alcotest.(check int) "writes per op" (16 * (Desc.words + 1))
        st.Desc_queue.host_writes)

let test_queue_spinlock_costs_more () =
  let eng1, q1 = mk_queue ~size:32 ~locking:Desc_queue.Lock_free
      Desc_queue.Host_to_board in
  let eng2, q2 = mk_queue ~size:32 ~locking:Desc_queue.Spin_lock
      Desc_queue.Host_to_board in
  let words q =
    let st = Desc_queue.access_stats q in
    st.Desc_queue.host_reads + st.Desc_queue.host_writes
  in
  in_process eng1 (fun () ->
      for i = 1 to 8 do
        ignore (Desc_queue.host_enqueue q1 (d i))
      done);
  in_process eng2 (fun () ->
      for i = 1 to 8 do
        ignore (Desc_queue.host_enqueue q2 (d i))
      done);
  Alcotest.(check bool) "spin lock touches more words" true
    (words q2 > words q1)

(* check_invariants understands the locking mode: shadow staleness is
   unconstrained under the spin lock (shadows are never consulted), so a
   spin-lock queue stays clean across wraparounds mid-operation — while
   an unsafe-direction shadow refresh in lock-free mode is flagged. *)
let test_queue_invariants_locking_modes () =
  let eng, q =
    mk_queue ~size:4 ~locking:Desc_queue.Spin_lock Desc_queue.Host_to_board
  in
  in_process eng (fun () ->
      for round = 1 to 3 do
        for i = 1 to 3 do
          ignore (Desc_queue.host_enqueue q (d ((round * 10) + i)));
          Alcotest.(check (list string)) "clean after enqueue" []
            (Desc_queue.check_invariants ~name:"spin" q)
        done;
        for _ = 1 to 3 do
          ignore (Desc_queue.board_dequeue q);
          Alcotest.(check (list string)) "clean after dequeue" []
            (Desc_queue.check_invariants ~name:"spin" q)
        done
      done);
  let eng2, q2 =
    mk_queue ~size:4 ~locking:Desc_queue.Lock_free Desc_queue.Host_to_board
  in
  Desc_queue.set_test_mutation q2 Desc_queue.Eager_shadow_tail;
  in_process eng2 (fun () ->
      for i = 1 to 3 do
        ignore (Desc_queue.host_enqueue q2 (d i))
      done;
      ignore (Desc_queue.host_probe_full q2);
      Alcotest.(check bool) "unsafe shadow refresh flagged" true
        (Desc_queue.check_invariants ~name:"lf" q2 <> []))

(* Interleaved producer/consumer property: everything enqueued is dequeued
   exactly once, in order, under arbitrary schedules. *)
let queue_linearizable =
  QCheck.Test.make ~name:"desc_queue: interleaved FIFO integrity" ~count:60
    QCheck.(pair (int_range 1 60) (int_range 0 1000))
    (fun (n, seed) ->
      let eng = Engine.create () in
      let q =
        Desc_queue.create eng ~size:8 ~direction:Desc_queue.Host_to_board
          ~locking:Desc_queue.Lock_free ~hooks:Desc_queue.free_hooks ()
      in
      let rng = Rng.create ~seed in
      let got = ref [] in
      Process.spawn eng ~name:"producer" (fun () ->
          for i = 1 to n do
            while not (Desc_queue.host_enqueue q (d i)) do
              Process.sleep eng 3
            done;
            Process.sleep eng (Rng.int rng 5)
          done);
      Process.spawn eng ~name:"consumer" (fun () ->
          let consumed = ref 0 in
          while !consumed < n do
            (match Desc_queue.board_dequeue q with
            | Some x ->
                got := x.Desc.vci :: !got;
                incr consumed
            | None -> ());
            Process.sleep eng (Rng.int rng 7)
          done);
      Engine.run eng;
      List.rev !got = List.init n (fun i -> i + 1))

(* Whole-board loopback: a PDU queued on the transmit side arrives intact
   in the receive buffers of a second board. *)
let board_loopback ?(dma_mode = Board.Double_cell) ?(pdu_len = 5000)
    ?(link_cfg = Atm_link.default_config) () =
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(8 lsl 20) ~page_size:4096 () in
  let bus_a = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let bus_b = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let cfg = { Board.default_config with Board.dma_mode } in
  let interrupts = ref [] in
  let board_a =
    Board.create eng ~bus:bus_a ~mem
      ~on_interrupt:(fun r -> interrupts := r :: !interrupts)
      cfg
  in
  let board_b =
    Board.create eng ~bus:bus_b ~mem
      ~on_interrupt:(fun r -> interrupts := r :: !interrupts)
      cfg
  in
  let rng = Rng.create ~seed:8 in
  let ab = Atm_link.create eng (Rng.split rng) link_cfg in
  let ba = Atm_link.create eng (Rng.split rng) link_cfg in
  Board.attach board_a ~tx_link:ab ~rx_link:ba;
  Board.attach board_b ~tx_link:ba ~rx_link:ab;
  Board.start board_a;
  Board.start board_b;
  let vci = 7 in
  Board.bind_vci board_b ~vci (Board.kernel_channel board_b);
  (* Receive buffers for B. *)
  let rx_buf_size = 16 * 1024 in
  let free_q = Board.free_queue (Board.kernel_channel board_b) in
  let rx_q = Board.rx_queue (Board.kernel_channel board_b) in
  let tx_q = Board.tx_queue (Board.kernel_channel board_a) in
  (* Source data in "host memory" of A. *)
  let src_addr = 1 lsl 20 in
  let payload = Bytes.init pdu_len (fun i -> Char.chr ((i * 3) land 0xff)) in
  Phys_mem.blit_from_bytes mem ~src:payload ~src_off:0 ~dst:src_addr
    ~len:pdu_len;
  let result = ref None in
  Process.spawn eng ~name:"host" (fun () ->
      (* stock B's free queue *)
      for i = 0 to 3 do
        ignore
          (Desc_queue.host_enqueue free_q
             (Desc.v ~addr:((2 lsl 20) + (i * rx_buf_size)) ~len:rx_buf_size ()))
      done;
      (* queue the PDU on A as a 2-buffer chain *)
      let cut = pdu_len / 2 in
      ignore
        (Desc_queue.host_enqueue tx_q
           (Desc.v ~addr:src_addr ~len:cut ~vci ~eop:false ()));
      ignore
        (Desc_queue.host_enqueue tx_q
           (Desc.v ~addr:(src_addr + cut) ~len:(pdu_len - cut) ~vci ~eop:true
              ()));
      (* wait for the receive queue to yield a complete PDU *)
      let chain = ref [] in
      let finished = ref false in
      while not !finished do
        (match Desc_queue.host_dequeue rx_q with
        | Some desc ->
            chain := desc :: !chain;
            if desc.Desc.eop then finished := true
        | None -> Process.sleep eng 50_000);
        if Engine.now eng > 1_000_000_000 then failwith "timeout"
      done;
      let framed =
        Phys_mem.bytes_of_pbufs mem (List.rev_map Desc.to_pbuf !chain)
      in
      result := Some (Sar.deframe framed));
  Engine.run ~until:2_000_000_000 eng;
  (payload, !result, board_a, board_b)

let test_loopback_intact () =
  let payload, result, board_a, board_b = board_loopback () in
  (match result with
  | Some (Ok data) ->
      Alcotest.(check bytes) "payload intact" payload data
  | Some (Error e) -> Alcotest.fail ("deframe: " ^ e)
  | None -> Alcotest.fail "no PDU received");
  let sa = Board.stats board_a and sb = Board.stats board_b in
  Alcotest.(check int) "one PDU sent" 1 sa.Board.pdus_sent;
  Alcotest.(check int) "one PDU received" 1 sb.Board.pdus_received;
  Alcotest.(check int) "cells conserved" sa.Board.cells_sent
    sb.Board.cells_received

let test_loopback_single_cell () =
  let payload, result, _, _ = board_loopback ~dma_mode:Board.Single_cell () in
  match result with
  | Some (Ok data) -> Alcotest.(check bytes) "payload intact" payload data
  | _ -> Alcotest.fail "single-cell loopback failed"

let test_loopback_with_skew () =
  let link_cfg =
    {
      Atm_link.default_config with
      Atm_link.skew = [| 0; 5000; 10000; 15000 |];
    }
  in
  let payload, result, _, board_b = board_loopback ~link_cfg () in
  (match result with
  | Some (Ok data) -> Alcotest.(check bytes) "payload intact" payload data
  | _ -> Alcotest.fail "skewed loopback failed");
  (* Skew destroys double-cell combining (paper §2.6). *)
  let sb = Board.stats board_b in
  Alcotest.(check bool)
    (Printf.sprintf "combining suppressed (%d)" sb.Board.combined_dmas)
    true
    (sb.Board.combined_dmas < 5)

let test_double_cell_combines () =
  (* Combining engages when cells queue up faster than single-cell DMA
     drains them: saturate a lone board with the fictitious source. *)
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(8 lsl 20) ~page_size:4096 () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let board =
    Board.create eng ~bus ~mem ~on_interrupt:ignore
      { Board.default_config with Board.dma_mode = Board.Double_cell }
  in
  Board.bind_vci board ~vci:7 (Board.kernel_channel board);
  let pdu = Bytes.init 16000 (fun i -> Char.chr (i land 0xff)) in
  Board.start_fictitious_source board ~pdus:[ (7, pdu) ] ();
  Board.start board;
  let free_q = Board.free_queue (Board.kernel_channel board) in
  let rx_q = Board.rx_queue (Board.kernel_channel board) in
  Process.spawn eng ~name:"host" (fun () ->
      for i = 0 to 30 do
        ignore
          (Desc_queue.host_enqueue free_q
             (Desc.v ~addr:((2 lsl 20) + (i * 16384)) ~len:16384 ()))
      done;
      (* keep draining so buffers recycle *)
      let rec loop () =
        (match Desc_queue.host_dequeue rx_q with
        | Some d ->
            ignore
              (Desc_queue.host_enqueue free_q
                 (Desc.v ~addr:d.Desc.addr ~len:16384 ()))
        | None -> Process.sleep eng 50_000);
        loop ()
      in
      loop ());
  Engine.run ~until:5_000_000 eng;
  let sb = Board.stats board in
  Alcotest.(check bool)
    (Printf.sprintf "combined %d of %d cells" sb.Board.combined_dmas
       sb.Board.cells_received)
    true
    (sb.Board.combined_dmas * 2 > sb.Board.cells_received / 2);
  Alcotest.(check bool) "PDUs flowed" true (sb.Board.pdus_received > 10)

(* The per-VCI preallocated buffer path (the board half of fbufs, §3.1):
   buffers supplied for a VCI are preferred over the generic free queue. *)
let test_vci_buffer_preference () =
  (* A loopback where the VC has private buffers and the generic free
     queue is left empty. *)
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(8 lsl 20) ~page_size:4096 () in
  let bus_a = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let bus_b = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let cfg = Board.default_config in
  let board_a = Board.create eng ~bus:bus_a ~mem ~on_interrupt:ignore cfg in
  let board_b = Board.create eng ~bus:bus_b ~mem ~on_interrupt:ignore cfg in
  let rng = Rng.create ~seed:9 in
  let ab = Atm_link.create eng (Rng.split rng) Atm_link.default_config in
  let ba = Atm_link.create eng (Rng.split rng) Atm_link.default_config in
  Board.attach board_a ~tx_link:ab ~rx_link:ba;
  Board.attach board_b ~tx_link:ba ~rx_link:ab;
  Board.start board_a;
  Board.start board_b;
  let vci = 7 in
  Board.bind_vci board_b ~vci (Board.kernel_channel board_b);
  let src_addr = 1 lsl 20 in
  Phys_mem.fill mem ~addr:src_addr ~len:1000 'v';
  let got = ref false in
  Process.spawn eng ~name:"host" (fun () ->
      (* two private 16KB buffers for this VCI; nothing in the free queue *)
      ignore (Board.supply_vci_buffer board_b ~vci
                (Desc.v ~addr:(2 lsl 20) ~len:(16 * 1024) ()));
      ignore (Board.supply_vci_buffer board_b ~vci
                (Desc.v ~addr:((2 lsl 20) + (16 * 1024)) ~len:(16 * 1024) ()));
      Alcotest.(check int) "buffers registered" 2
        (Board.vci_buffer_count board_b ~vci);
      ignore
        (Desc_queue.host_enqueue
           (Board.tx_queue (Board.kernel_channel board_a))
           (Desc.v ~addr:src_addr ~len:1000 ~vci ~eop:true ()));
      let rx_q = Board.rx_queue (Board.kernel_channel board_b) in
      let rec wait () =
        match Desc_queue.host_dequeue rx_q with
        | Some d ->
            Alcotest.(check int) "delivered into the private buffer"
              (2 lsl 20) d.Desc.addr;
            got := true
        | None ->
            Process.sleep eng 10_000;
            if Engine.now eng < 500_000_000 then wait ()
      in
      wait ());
  Engine.run ~until:1_000_000_000 eng;
  Alcotest.(check bool) "PDU received without touching the free queue" true
    !got;
  Alcotest.(check int) "one private buffer consumed" 1
    (Board.vci_buffer_count board_b ~vci)

let suite =
  [
    Alcotest.test_case "desc_queue: FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "desc_queue: full/empty" `Quick test_queue_full_empty;
    Alcotest.test_case "desc_queue: counters" `Quick test_queue_counters;
    Alcotest.test_case "desc_queue: peek/advance" `Quick
      test_queue_peek_advance;
    Alcotest.test_case "desc_queue: direction" `Quick
      test_queue_direction_enforced;
    Alcotest.test_case "desc_queue: tx-full protocol" `Quick
      test_queue_waiting_protocol;
    Alcotest.test_case "desc_queue: shadow pointers" `Quick
      test_queue_shadow_saves_reads;
    Alcotest.test_case "desc_queue: spin lock traffic" `Quick
      test_queue_spinlock_costs_more;
    Alcotest.test_case "desc_queue: invariants vs locking mode" `Quick
      test_queue_invariants_locking_modes;
    QCheck_alcotest.to_alcotest queue_linearizable;
    Alcotest.test_case "board: loopback intact" `Quick test_loopback_intact;
    Alcotest.test_case "board: single-cell loopback" `Quick
      test_loopback_single_cell;
    Alcotest.test_case "board: loopback under skew" `Quick
      test_loopback_with_skew;
    Alcotest.test_case "board: double-cell combining" `Quick
      test_double_cell_combines;
    Alcotest.test_case "board: per-VCI buffers (fbuf fast path)" `Quick
      test_vci_buffer_preference;
  ]
