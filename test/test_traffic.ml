(* The CDF-driven workload generator: inverse-transform sampling must be
   monotone, empirical means must converge to the analytic mean, and
   the connection-matrix generators must emit well-formed, sorted flow
   lists. *)

module Cdf = Osiris_traffic.Cdf
module Matrix = Osiris_traffic.Matrix
module Rng = Osiris_util.Rng
module Time = Osiris_sim.Time

(* --- unit coverage ------------------------------------------------ *)

let test_of_points_validation () =
  let bad what pts =
    match Cdf.of_points ~name:"bad" pts with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  bad "single point" [ (1.0, 0.0) ];
  bad "p0 <> 0" [ (1.0, 0.1); (2.0, 1.0) ];
  bad "pn <> 1" [ (1.0, 0.0); (2.0, 0.9) ];
  bad "x not increasing" [ (2.0, 0.0); (1.0, 1.0) ];
  bad "p decreasing" [ (1.0, 0.0); (2.0, 0.5); (3.0, 0.4); (4.0, 1.0) ];
  ignore (Cdf.of_points ~name:"ok" [ (1.0, 0.0); (10.0, 1.0) ])

let test_named_cdfs () =
  List.iter
    (fun name ->
      let c = Cdf.by_name name in
      Alcotest.(check string) "name" name (Cdf.name c);
      Alcotest.(check bool) "mean positive" true (Cdf.mean c > 0.))
    [ "websearch"; "datamining" ];
  (match Cdf.by_name "nonsense" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown workload accepted");
  (* The tails tell the workloads apart: datamining's support reaches
     far beyond websearch's. *)
  Alcotest.(check bool) "datamining tail heavier" true
    (Cdf.quantile Cdf.datamining 1.0 > Cdf.quantile Cdf.websearch 1.0)

let test_quantile_endpoints_and_clamp () =
  let c = Cdf.uniform ~lo:100 ~hi:200 in
  Alcotest.(check (float 1e-6)) "q(0)" 100.0 (Cdf.quantile c 0.0);
  Alcotest.(check (float 1e-6)) "q(1)" 200.0 (Cdf.quantile c 1.0);
  Alcotest.(check (float 1e-6)) "clamp low" 100.0 (Cdf.quantile c (-0.5));
  Alcotest.(check (float 1e-6)) "clamp high" 200.0 (Cdf.quantile c 2.0);
  Alcotest.(check (float 1e-6)) "uniform mean" 150.0 (Cdf.mean c)

let test_scale_clamps () =
  let c = Cdf.scale Cdf.websearch ~factor:1e-4 ~min_bytes:44 ~max_bytes:4096 in
  Alcotest.(check bool) "min" true (Cdf.quantile c 0.0 >= 44.0);
  Alcotest.(check bool) "max" true (Cdf.quantile c 1.0 <= 4096.0 +. 16.0);
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let s = Cdf.sample c rng in
    if s < 1 || s > 4200 then Alcotest.failf "sample %d out of range" s
  done

let test_pair_burst () =
  let rng = Rng.create ~seed:42 in
  let fl =
    Matrix.pair_burst rng ~src:1 ~dst:0 ~flows:500 ~cdf:Cdf.websearch
      ~window:(Time.ms 10)
  in
  Alcotest.(check int) "count" 500 (List.length fl);
  let sorted = ref true and prev = ref Time.zero in
  List.iter
    (fun f ->
      if f.Matrix.f_src <> 1 || f.Matrix.f_dst <> 0 then
        Alcotest.fail "wrong endpoints";
      if f.Matrix.f_bytes < 1 then Alcotest.fail "empty flow";
      if f.Matrix.f_start < !prev then sorted := false;
      prev := f.Matrix.f_start;
      if f.Matrix.f_start < Time.zero || f.Matrix.f_start > Time.ms 10 then
        Alcotest.fail "start outside window")
    fl;
  Alcotest.(check bool) "sorted by start" true !sorted;
  Alcotest.(check bool) "total bytes" true (Matrix.total_bytes fl > 0);
  match Matrix.pair_burst rng ~src:3 ~dst:3 ~flows:1 ~cdf:Cdf.websearch
          ~window:Time.zero with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-pair accepted"

let test_permutation_matrix () =
  let rng = Rng.create ~seed:9 in
  let fl =
    Matrix.permutation rng ~nhosts:16 ~cdf:Cdf.datamining
      ~window:(Time.ms 1)
  in
  Alcotest.(check bool) "at most one per source" true
    (List.length fl <= 16);
  let srcs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if f.Matrix.f_src = f.Matrix.f_dst then
        Alcotest.fail "fixed point in permutation";
      if Hashtbl.mem srcs f.Matrix.f_src then
        Alcotest.fail "duplicate source";
      Hashtbl.replace srcs f.Matrix.f_src ())
    fl

let test_random_pairs () =
  let rng = Rng.create ~seed:17 in
  let fl =
    Matrix.random_pairs rng ~nhosts:8 ~nflows:200 ~cdf:Cdf.websearch
      ~window:(Time.us 500)
  in
  Alcotest.(check int) "count" 200 (List.length fl);
  List.iter
    (fun f ->
      if f.Matrix.f_src = f.Matrix.f_dst then Alcotest.fail "self flow";
      if f.Matrix.f_src < 0 || f.Matrix.f_src >= 8 then
        Alcotest.fail "src out of range";
      if f.Matrix.f_dst < 0 || f.Matrix.f_dst >= 8 then
        Alcotest.fail "dst out of range")
    fl

(* --- qcheck ------------------------------------------------------- *)

let named_arb =
  QCheck.make
    ~print:(fun c -> Cdf.name c)
    QCheck.Gen.(
      map
        (function
          | 0 -> Cdf.websearch
          | 1 -> Cdf.datamining
          | 2 -> Cdf.uniform ~lo:10 ~hi:100_000
          | _ -> Cdf.fixed 777)
        (int_bound 3))

let quantile_monotone =
  QCheck.Test.make ~name:"traffic: inverse CDF is monotone" ~count:500
    QCheck.(triple named_arb (float_bound_inclusive 1.0)
              (float_bound_inclusive 1.0))
    (fun (c, u1, u2) ->
      let lo = Float.min u1 u2 and hi = Float.max u1 u2 in
      Cdf.quantile c lo <= Cdf.quantile c hi)

let empirical_mean_converges =
  QCheck.Test.make ~name:"traffic: sample mean approaches analytic mean"
    ~count:20
    QCheck.(small_nat)
    (fun salt ->
      (* Heavy-tailed named workloads need too many draws for a unit
         test; bounded supports converge fast. *)
      let c = Cdf.uniform ~lo:50 ~hi:5000 in
      let rng = Rng.create ~seed:(1000 + salt) in
      let n = 20_000 in
      let sum = ref 0 in
      for _ = 1 to n do
        sum := !sum + Cdf.sample c rng
      done;
      let emp = float_of_int !sum /. float_of_int n in
      let ana = Cdf.mean c in
      Float.abs (emp -. ana) /. ana < 0.05)

let suite =
  [
    Alcotest.test_case "of_points validation" `Quick
      test_of_points_validation;
    Alcotest.test_case "named workloads" `Quick test_named_cdfs;
    Alcotest.test_case "quantile endpoints + clamping" `Quick
      test_quantile_endpoints_and_clamp;
    Alcotest.test_case "scale clamps support" `Quick test_scale_clamps;
    Alcotest.test_case "pair burst matrix" `Quick test_pair_burst;
    Alcotest.test_case "permutation matrix" `Quick test_permutation_matrix;
    Alcotest.test_case "random pairs matrix" `Quick test_random_pairs;
    QCheck_alcotest.to_alcotest quantile_monotone;
    QCheck_alcotest.to_alcotest empirical_mean_converges;
  ]
