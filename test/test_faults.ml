(* Failure-injection and stress tests: the system must stay correct (no
   corruption, no leaks, no wedges) under lossy links, jittery striping,
   and concurrent streams. *)

open Osiris_sim
open Osiris_core
module Board = Osiris_board.Board
module Atm_link = Osiris_link.Atm_link
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Udp = Osiris_proto.Udp

let raw_vci = 9

let pair ?link ?(machine = Machine.ds5000_200) () =
  let eng = Engine.create () in
  let a = Host.create eng machine ~addr:0x0a000001l Host.default_config in
  let b =
    Host.create eng machine ~addr:0x0a000002l
      { Host.default_config with seed = 43 }
  in
  ignore (Network.connect eng ?link a b);
  (eng, a, b)

(* Heavy cell loss: most PDUs die, but every delivered byte is correct and
   the system keeps flowing (no buffer leaks, no reassembly wedge). *)
let test_lossy_link_no_corruption () =
  let link =
    { Atm_link.default_config with Atm_link.drop_prob = 0.003 }
  in
  let eng, a, b = pair ~link () in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let good = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      if not (Bytes.equal (Msg.read_all msg) template) then
        Alcotest.fail "corrupted PDU delivered despite cell loss";
      incr good;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 60 do
        let m = Msg.alloc a.Host.vs ~len:8192 () in
        Msg.blit_into m ~off:0 ~src:template;
        Driver.send a.Host.driver ~vci:raw_vci m
      done);
  Engine.run ~until:(Time.s 1) eng;
  let bstats = Board.stats b.Host.board in
  Alcotest.(check bool)
    (Printf.sprintf "losses occurred (%d reasm errors)"
       bstats.Board.reassembly_errors)
    true
    (bstats.Board.reassembly_errors > 0
    || (Driver.stats b.Host.driver).Driver.crc_drops > 0
    || (Driver.stats b.Host.driver).Driver.aborted_chains > 0);
  Alcotest.(check bool)
    (Printf.sprintf "flow survived (%d delivered)" !good)
    true (!good > 10);
  (* No leak: the receive pool must be reusable afterwards. *)
  Alcotest.(check bool) "buffers recovered" true
    (Driver.pool_available b.Host.driver
     + Osiris_board.Desc_queue.count
         (Board.free_queue (Board.kernel_channel b.Host.board))
    > 40)

(* Random per-cell queueing jitter (switch-port delays, §2.6's third cause
   of skew): per-link order is preserved by construction, and per-link
   reassembly keeps delivering intact PDUs. *)
let test_jittery_striping_end_to_end () =
  let link =
    { Atm_link.default_config with Atm_link.jitter_mean = Time.us 3 }
  in
  let eng, a, b = pair ~link () in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let template = Bytes.init 12000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let good = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      Alcotest.(check bool) "intact under jitter" true
        (Bytes.equal (Msg.read_all msg) template);
      incr good;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 20 do
        let m = Msg.alloc a.Host.vs ~len:12000 () in
        Msg.blit_into m ~off:0 ~src:template;
        Driver.send a.Host.driver ~vci:raw_vci m;
        Process.sleep eng (Time.us 500)
      done);
  Engine.run ~until:(Time.s 1) eng;
  Alcotest.(check int) "all delivered" 20 !good

(* Several VCIs interleaving on one link: streams never bleed into each
   other. *)
let test_concurrent_streams_isolation () =
  let eng, a, b = pair () in
  let streams = [ (11, 'A', 3000); (12, 'B', 9000); (13, 'C', 500) ] in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (vci, tag, size) ->
      Board.bind_vci a.Host.board ~vci (Board.kernel_channel a.Host.board);
      Board.bind_vci b.Host.board ~vci (Board.kernel_channel b.Host.board);
      Demux.bind b.Host.demux ~vci ~name:"sink" (fun ~vci:_ msg ->
          let data = Msg.read_all msg in
          Alcotest.(check int) (Printf.sprintf "stream %c size" tag) size
            (Bytes.length data);
          Bytes.iter
            (fun c ->
              if c <> tag then
                Alcotest.fail
                  (Printf.sprintf "stream %c polluted with %c" tag c))
            data;
          Hashtbl.replace counts vci
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts vci));
          Msg.dispose msg))
    streams;
  List.iter
    (fun (vci, tag, size) ->
      Process.spawn eng ~name:"tx" (fun () ->
          for _ = 1 to 12 do
            Driver.send a.Host.driver ~vci
              (Msg.alloc a.Host.vs ~len:size ~fill:(fun _ -> tag) ());
            Process.sleep eng (Time.us 150)
          done))
    streams;
  Engine.run ~until:(Time.s 1) eng;
  List.iter
    (fun (vci, tag, _) ->
      Alcotest.(check int)
        (Printf.sprintf "stream %c complete" tag)
        12
        (Option.value ~default:0 (Hashtbl.find_opt counts vci)))
    streams

(* UDP checksum on over a corrupting link: corrupt datagrams are dropped
   by the CRC at the adaptor (never billed to UDP), clean ones verify. *)
let test_udp_over_corrupting_link () =
  let link =
    { Atm_link.default_config with Atm_link.corrupt_prob = 0.001 }
  in
  let eng, a, b = pair ~link () in
  let ok = ref 0 in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      incr ok;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 40 do
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
          (Msg.alloc a.Host.vs ~len:4096 ());
        Process.sleep eng (Time.us 300)
      done);
  Engine.run ~until:(Time.s 1) eng;
  let crc = (Driver.stats b.Host.driver).Driver.crc_drops in
  Alcotest.(check bool)
    (Printf.sprintf "some dropped by CRC (%d), most delivered (%d)" crc !ok)
    true
    (crc > 0 && !ok > 25 && !ok + crc = 40);
  Alcotest.(check int) "UDP never saw corrupt data" 0
    (Udp.stats b.Host.udp).Udp.checksum_errors

(* Determinism: two identical runs produce byte-identical outcomes. *)
let test_network_determinism () =
  let run () =
    let link =
      { Atm_link.default_config with
        Atm_link.jitter_mean = Time.us 2; drop_prob = 0.002 }
    in
    let eng, a, b = pair ~link () in
    let n = ref 0 in
    Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
        incr n;
        Msg.dispose msg);
    Process.spawn eng ~name:"tx" (fun () ->
        for _ = 1 to 30 do
          Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
            (Msg.alloc a.Host.vs ~len:6000 ());
          Process.sleep eng (Time.us 200)
        done);
    Engine.run ~until:(Time.ms 500) eng;
    ( !n,
      (Board.stats b.Host.board).Board.cells_received,
      (Driver.stats b.Host.driver).Driver.crc_drops,
      Engine.now eng )
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "identical outcomes" true (r1 = r2)

(* ------------------------------------------------------------------ *)
(* Fault-injection subsystem: recovery timers, degradation, soak. *)

module Cell = Osiris_atm.Cell
module Atm = Atm_link
module Adc = Osiris_adc.Adc
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector
module Fault_soak = Osiris_experiments.Fault_soak

(* Like [pair], but with recovery machinery configurable and the network
   record kept so tests can reach the links. *)
let fault_pair ?link ?(board = Board.default_config)
    ?(machine = Machine.ds5000_200) () =
  let eng = Engine.create () in
  let cfg = { Host.default_config with Host.board } in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b =
    Host.create eng machine ~addr:0x0a000002l { cfg with Host.seed = 43 }
  in
  let net = Network.connect eng ?link a b in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  (eng, a, b, net)

let raw_sink ?(expect_size = true) b template good =
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      let data = Msg.read_all msg in
      if expect_size && Bytes.length data <> Bytes.length template then
        Alcotest.fail "wrong-sized PDU delivered"
      else if not (Bytes.equal data template) then
        Alcotest.fail "corrupted PDU delivered";
      incr good;
      Msg.dispose msg)

let send_template a template =
  let m = Msg.alloc a.Host.vs ~len:(Bytes.length template) () in
  Msg.blit_into m ~off:0 ~src:template;
  Driver.send a.Host.driver ~vci:raw_vci m

(* The regression this PR exists for: drop a single framing-bit (eom)
   cell under per-link reassembly and, without a reassembly timeout, that
   VC holds its partial buffers forever. With the timeout the board
   sweeps the stuck PDU, posts the timeout abort marker, the driver
   recycles the partial chain under the dedicated counter, and the next
   PDU flows. *)
let test_dropped_framing_cell_times_out () =
  let eng, a, b, net =
    fault_pair
      ~board:{ Board.default_config with Board.reassembly_timeout = Time.ms 1 }
      ()
  in
  (* 40000 bytes spans three 16 KB pool buffers, so part of the chain is
     already posted to the host when the stall hits — exercising the
     abort-marker path, not just board-side cleanup. *)
  let template = Bytes.init 40000 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let good = ref 0 in
  raw_sink b template good;
  let dropped = ref false in
  Atm.set_cell_filter net.Network.a_to_b
    (Some
       (fun _link cell ->
         if cell.Cell.eom && not !dropped then begin
           dropped := true;
           false
         end
         else true));
  Process.spawn eng ~name:"tx" (fun () ->
      send_template a template;
      Process.sleep eng (Time.ms 5);
      Atm.set_cell_filter net.Network.a_to_b None;
      send_template a template);
  Engine.run ~until:(Time.ms 20) eng;
  Alcotest.(check bool) "framing cell was dropped" true !dropped;
  Alcotest.(check int) "second PDU delivered after recovery" 1 !good;
  let d = Driver.stats b.Host.driver in
  Alcotest.(check int) "driver counts a timeout abort" 1 d.Driver.timeout_aborts;
  Alcotest.(check bool) "board sweeper fired" true
    ((Board.stats b.Host.board).Board.reassembly_timeouts >= 1);
  Alcotest.(check int) "nothing left in reassembly" 0
    (Board.reassemblies_in_progress b.Host.board);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Duplicated cells shift the per-link streams, so affected PDUs die at
   the CRC; delivered ones stay byte-exact, spurious reassemblies opened
   by late duplicates are swept, and nothing leaks. *)
let test_duplicate_cells_harmless () =
  (* 0.003/cell: a 171-cell PDU survives duplication-free ~60% of the
     time, so losses and survivors are both well represented. *)
  let link = { Atm.default_config with Atm.dup_prob = 0.003 } in
  let eng, a, b, net =
    fault_pair ~link
      ~board:{ Board.default_config with Board.reassembly_timeout = Time.ms 2 }
      ()
  in
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 5) land 0xff)) in
  let good = ref 0 in
  raw_sink b template good;
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 40 do
        send_template a template;
        Process.sleep eng (Time.us 300)
      done);
  Engine.run ~until:(Time.ms 40) eng;
  let l = Atm.stats net.Network.a_to_b in
  Alcotest.(check bool)
    (Printf.sprintf "cells were duplicated (%d)" l.Atm.duplicated)
    true (l.Atm.duplicated > 0);
  Alcotest.(check bool)
    (Printf.sprintf "flow survived (%d delivered)" !good)
    true (!good > 10);
  Alcotest.(check int) "no residual reassemblies" 0
    (Board.reassemblies_in_progress b.Host.board);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Header corruption (VCI/seq mangles): misdelivered cells either land on
   an unbound VCI or scramble a stream the CRC then rejects — never a
   corrupt delivery — and the timeout sweeps any reassembly a stray cell
   opened. *)
let test_header_corruption_never_escapes () =
  let link = { Atm.default_config with Atm.corrupt_header_prob = 0.005 } in
  let eng, a, b, net =
    fault_pair ~link
      ~board:{ Board.default_config with Board.reassembly_timeout = Time.ms 2 }
      ()
  in
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 3) land 0xff)) in
  let good = ref 0 in
  raw_sink b template good;
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 40 do
        send_template a template;
        Process.sleep eng (Time.us 300)
      done);
  Engine.run ~until:(Time.ms 40) eng;
  let l = Atm.stats net.Network.a_to_b in
  Alcotest.(check bool)
    (Printf.sprintf "headers were corrupted (%d)" l.Atm.header_corrupted)
    true (l.Atm.header_corrupted > 0);
  Alcotest.(check bool)
    (Printf.sprintf "flow survived (%d delivered)" !good)
    true (!good > 10);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Carrier loss mid-stream: both ends re-stripe over the survivors and
   traffic keeps flowing during the outage; the boundary PDUs die with
   accounting, and full width returns when the carrier does. *)
let test_link_down_degrades_gracefully () =
  let eng, a, b, net =
    fault_pair
      ~board:{ Board.default_config with Board.reassembly_timeout = Time.ms 2 }
      ()
  in
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 9) land 0xff)) in
  let good = ref 0 and good_during_outage = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      if not (Bytes.equal (Msg.read_all msg) template) then
        Alcotest.fail "corrupted PDU delivered";
      incr good;
      let now = Engine.now eng in
      if now > Time.ms 5 && now < Time.ms 15 then incr good_during_outage;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 60 do
        send_template a template;
        Process.sleep eng (Time.us 300)
      done);
  Process.spawn eng ~name:"carrier" (fun () ->
      Process.sleep eng (Time.ms 5);
      Atm.set_link_state net.Network.a_to_b ~link:2 false;
      Process.sleep eng (Time.ms 10);
      Atm.set_link_state net.Network.a_to_b ~link:2 true);
  Engine.run ~until:(Time.ms 40) eng;
  Alcotest.(check int) "full stripe width restored" 4
    (Atm.nlive net.Network.a_to_b);
  Alcotest.(check bool)
    (Printf.sprintf "traffic flowed during the outage (%d)"
       !good_during_outage)
    true
    (!good_during_outage > 0);
  Alcotest.(check bool)
    (Printf.sprintf "most PDUs delivered (%d/60)" !good)
    true (!good > 40);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Per-ADC interrupt loss (ROADMAP item): a plan burst targeting one
   channel's [Rx_nonempty] assertions starves only that ADC — the kernel
   channel keeps delivering through the outage — and the [irq_reassert]
   watchdog restores the ADC once the burst ends. *)
let test_per_channel_irq_loss () =
  let eng, a, b, net =
    fault_pair
      ~board:{ Board.default_config with Board.irq_reassert = Time.ms 1 }
      ()
  in
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let adc_vci = 40 in
  Board.bind_vci a.Host.board ~vci:adc_vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci:adc_vci (Adc.channel app_b);
  let adc_ch = Board.channel_id (Adc.channel app_b) in
  let template = Bytes.init 4096 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let kern_good = ref 0 and adc_good = ref 0 in
  raw_sink b template kern_good;
  Demux.bind (Adc.demux app_b) ~vci:adc_vci ~name:"app-sink"
    (fun ~vci:_ msg ->
      incr adc_good;
      Msg.dispose msg);
  (* Every Rx_nonempty for the ADC's channel is eaten until 8 ms; channel
     0 (the kernel) draws no filter decision at all. *)
  let plan =
    Plan.of_string (Printf.sprintf "seed=5;irqloss#%d@0-8ms=1" adc_ch)
  in
  ignore
    (Injector.inject eng ~plan ~link:net.Network.a_to_b ~board:b.Host.board ());
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 20 do
        send_template a template;
        Adc.send app_a ~vci:adc_vci (Adc.alloc_msg app_a ~len:2048 ());
        Process.sleep eng (Time.us 200)
      done);
  ignore
    (Engine.schedule_at eng ~time:(Time.ms 7) (fun () ->
         Alcotest.(check bool)
           (Printf.sprintf "kernel flowed during the outage (%d)" !kern_good)
           true (!kern_good > 0);
         Alcotest.(check int) "ADC starved during the outage" 0 !adc_good));
  Engine.run ~until:(Time.ms 30) eng;
  let bstats = Board.stats b.Host.board in
  Alcotest.(check bool)
    (Printf.sprintf "interrupts were suppressed (%d)"
       bstats.Board.interrupts_suppressed)
    true
    (bstats.Board.interrupts_suppressed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "watchdog re-asserted (%d)" bstats.Board.irq_reasserts)
    true
    (bstats.Board.irq_reasserts > 0);
  Alcotest.(check int) "kernel channel unaffected" 20 !kern_good;
  Alcotest.(check int) "ADC recovered after the burst" 20 !adc_good;
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Per-ADC free-queue starvation (ROADMAP item): a plan window gating one
   channel's free queue drops that ADC's PDUs for want of buffers while
   the kernel channel keeps flowing; replenishment returns when the
   window closes and the ADC catches the next batch. *)
let test_per_channel_free_starvation () =
  let eng, a, b, net = fault_pair () in
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let adc_vci = 40 in
  Board.bind_vci a.Host.board ~vci:adc_vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci:adc_vci (Adc.channel app_b);
  let adc_ch = Board.channel_id (Adc.channel app_b) in
  let template = Bytes.init 4096 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let kern_good = ref 0 and adc_good = ref 0 in
  raw_sink b template kern_good;
  Demux.bind (Adc.demux app_b) ~vci:adc_vci ~name:"app-sink"
    (fun ~vci:_ msg ->
      incr adc_good;
      Msg.dispose msg);
  let plan =
    Plan.of_string (Printf.sprintf "seed=5;freestarve#%d@0-8ms" adc_ch)
  in
  ignore
    (Injector.inject eng ~plan ~link:net.Network.a_to_b ~board:b.Host.board ());
  Alcotest.(check bool) "gate armed" true
    (Board.free_gated b.Host.board ~ch:adc_ch);
  Alcotest.(check bool) "kernel channel not gated" false
    (Board.free_gated b.Host.board ~ch:0);
  (* First batch lands entirely inside the starvation window. *)
  Process.spawn eng ~name:"tx1" (fun () ->
      for _ = 1 to 15 do
        send_template a template;
        Adc.send app_a ~vci:adc_vci (Adc.alloc_msg app_a ~len:2048 ());
        Process.sleep eng (Time.us 200)
      done);
  ignore
    (Engine.schedule_at eng ~time:(Time.ms 7) (fun () ->
         Alcotest.(check bool)
           (Printf.sprintf "kernel flowed while the ADC starved (%d)"
              !kern_good)
           true (!kern_good > 0);
         Alcotest.(check int) "starved ADC delivered nothing" 0 !adc_good));
  (* Second batch goes out after replenishment returns. *)
  Process.spawn eng ~name:"tx2" (fun () ->
      Process.sleep eng (Time.ms 10);
      for _ = 1 to 10 do
        Adc.send app_a ~vci:adc_vci (Adc.alloc_msg app_a ~len:2048 ());
        Process.sleep eng (Time.us 200)
      done);
  Engine.run ~until:(Time.ms 30) eng;
  let bstats = Board.stats b.Host.board in
  Alcotest.(check bool)
    (Printf.sprintf "starved PDUs dropped for want of buffers (%d)"
       bstats.Board.pdus_dropped_no_buffer)
    true
    (bstats.Board.pdus_dropped_no_buffer >= 15);
  Alcotest.(check int) "kernel channel unaffected" 15 !kern_good;
  Alcotest.(check int) "ADC recovered after the window" 10 !adc_good;
  Alcotest.(check bool) "gate released" false
    (Board.free_gated b.Host.board ~ch:adc_ch);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Carrier flap storm (ROADMAP item): channel 2 toggles every 40 µs for
   2 ms — far faster than one 8 KB PDU's ~130 µs wire time — so every
   overlapping PDU is sacrificed to a re-stripe. Convergence contract:
   full width returns after the storm, delivery resumes, and
   restripe_aborts stays bounded by the number of carrier transitions
   (nothing compounds). *)
let test_carrier_flap_storm () =
  let eng, a, b, net =
    fault_pair
      ~board:{ Board.default_config with Board.reassembly_timeout = Time.ms 2 }
      ()
  in
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 9) land 0xff)) in
  let good = ref 0 and good_after_storm = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      if not (Bytes.equal (Msg.read_all msg) template) then
        Alcotest.fail "corrupted PDU delivered";
      incr good;
      if Engine.now eng > Time.ms 5 then incr good_after_storm;
      Msg.dispose msg);
  (* 2 ms / 40 µs = 50 toggles; both boards re-stripe on each one. *)
  let plan = Plan.of_string "seed=6;flap#2@2ms-4ms=40us" in
  ignore
    (Injector.inject eng ~plan ~link:net.Network.a_to_b ~board:b.Host.board ());
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 50 do
        send_template a template;
        Process.sleep eng (Time.us 300)
      done);
  Engine.run ~until:(Time.ms 40) eng;
  Alcotest.(check int) "full stripe width restored" 4
    (Atm.nlive net.Network.a_to_b);
  let aborts =
    (Board.stats a.Host.board).Board.restripe_aborts
    + (Board.stats b.Host.board).Board.restripe_aborts
  in
  Alcotest.(check bool)
    (Printf.sprintf "storm forced re-stripe aborts (%d)" aborts)
    true (aborts > 0);
  (* 51 transitions worst-case, one in-flight PDU per end per
     transition: anything past that would mean aborts compounding. *)
  Alcotest.(check bool)
    (Printf.sprintf "restripe aborts bounded by transitions (%d <= 102)"
       aborts)
    true (aborts <= 102);
  Alcotest.(check bool)
    (Printf.sprintf "delivery resumed after the storm (%d)"
       !good_after_storm)
    true
    (!good_after_storm > 10);
  Invariants.assert_clean ~quiescent:true ~board:b.Host.board
    ~driver:b.Host.driver ()

(* Plans are data: textual round-trip and window arithmetic. *)
let test_plan_roundtrip () =
  let p = Plan.random ~seed:42 ~horizon:(Time.ms 20) () in
  Alcotest.(check string) "to_string . of_string = id" (Plan.to_string p)
    (Plan.to_string (Plan.of_string (Plan.to_string p)));
  let q = Plan.of_string "seed=3;drop@1ms-2ms=0.01;down#1@500us-1500us" in
  let k = Plan.knobs_at q (Time.us 1200) in
  Alcotest.(check (float 1e-9)) "drop active" 0.01 k.Plan.k_drop;
  Alcotest.(check (list int)) "link 1 down" [ 1 ] k.Plan.k_down;
  let k' = Plan.knobs_at q (Time.ms 3) in
  Alcotest.(check (float 1e-9)) "drop over" 0.0 k'.Plan.k_drop;
  Alcotest.(check (list int)) "carrier back" [] k'.Plan.k_down;
  (* Per-channel interrupt loss: round-trips, keeps the global dimension
     separate, and knobs only list channels with an active burst. *)
  let r = Plan.of_string "irqloss@1ms-4ms=0.25;irqloss#3@2ms-6ms=0.75" in
  Alcotest.(check string) "irqloss#N round-trips" (Plan.to_string r)
    (Plan.to_string (Plan.of_string (Plan.to_string r)));
  let kr = Plan.knobs_at r (Time.ms 3) in
  Alcotest.(check (float 1e-9)) "global irqloss" 0.25 kr.Plan.k_irq_loss;
  Alcotest.(check (list (pair int (float 1e-9)))) "channel 3 irqloss"
    [ (3, 0.75) ] kr.Plan.k_irq_loss_ch;
  let kr' = Plan.knobs_at r (Time.ms 5) in
  Alcotest.(check (float 1e-9)) "global over" 0.0 kr'.Plan.k_irq_loss;
  Alcotest.(check (list (pair int (float 1e-9)))) "channel 3 still active"
    [ (3, 0.75) ] kr'.Plan.k_irq_loss_ch;
  Alcotest.(check (list (pair int (float 1e-9)))) "all quiet at 7ms" []
    (Plan.knobs_at r (Time.ms 7)).Plan.k_irq_loss_ch;
  (* Free-queue starvation and flap storms: round-trip plus the flap
     parity arithmetic (down on even half-periods, up on odd, restored
     once the window closes). *)
  let f = Plan.of_string "freestarve#1@2ms-4ms;flap#2@2ms-4ms=40us" in
  Alcotest.(check string) "freestarve/flap round-trip" (Plan.to_string f)
    (Plan.to_string (Plan.of_string (Plan.to_string f)));
  Alcotest.(check (list int)) "channel 1 starved at 3ms" [ 1 ]
    (Plan.knobs_at f (Time.ms 3)).Plan.k_free_starve;
  Alcotest.(check (list int)) "starvation over at 5ms" []
    (Plan.knobs_at f (Time.ms 5)).Plan.k_free_starve;
  Alcotest.(check (list int)) "flap down on an even half-period" [ 2 ]
    (Plan.knobs_at f (Time.ms 2 + Time.us 10)).Plan.k_down;
  Alcotest.(check (list int)) "flap up on an odd half-period" []
    (Plan.knobs_at f (Time.ms 2 + Time.us 50)).Plan.k_down;
  Alcotest.(check (list int)) "flap down again next period" [ 2 ]
    (Plan.knobs_at f (Time.ms 2 + Time.us 90)).Plan.k_down;
  Alcotest.(check (list int)) "carrier restored after the storm" []
    (Plan.knobs_at f (Time.ms 5)).Plan.k_down;
  (* Boundary density: one per toggle so the injector tracks the storm —
     50 toggles plus the window close (the starvation window's edges
     coincide with the first toggle and the close). *)
  Alcotest.(check int) "flap storm boundary count" 51
    (List.length (Plan.boundaries f));
  (* Fabric dimensions: port-flap storms and trunk-loss bursts. *)
  let g = Plan.of_string "portflap#1@2ms-4ms=100us;trunkloss@1ms-3ms=0.2" in
  Alcotest.(check string) "portflap/trunkloss round-trip" (Plan.to_string g)
    (Plan.to_string (Plan.of_string (Plan.to_string g)));
  Alcotest.(check (list int)) "port 1 down on an even half-period" [ 1 ]
    (Plan.knobs_at g (Time.ms 2 + Time.us 20)).Plan.k_port_down;
  Alcotest.(check (list int)) "port 1 up on an odd half-period" []
    (Plan.knobs_at g (Time.ms 2 + Time.us 120)).Plan.k_port_down;
  Alcotest.(check (float 1e-9)) "trunk loss active" 0.2
    (Plan.knobs_at g (Time.ms 2)).Plan.k_trunk_loss;
  Alcotest.(check (float 1e-9)) "trunk loss over" 0.0
    (Plan.knobs_at g (Time.ms 3)).Plan.k_trunk_loss;
  Alcotest.(check (list int)) "port restored after the storm" []
    (Plan.knobs_at g (Time.ms 5)).Plan.k_port_down;
  (* Topology dimensions: switch-addressed port storms and clean trunk
     cuts over a generated fabric. *)
  let h = Plan.of_string "swflap#3.2@2ms-4ms=100us;trunkdown#5@1ms-3ms" in
  Alcotest.(check string) "swflap/trunkdown round-trip" (Plan.to_string h)
    (Plan.to_string (Plan.of_string (Plan.to_string h)));
  Alcotest.(check (list (pair int int)))
    "switch 3 port 2 down on an even half-period"
    [ (3, 2) ]
    (Plan.knobs_at h (Time.ms 2 + Time.us 20)).Plan.k_sw_port_down;
  Alcotest.(check (list (pair int int))) "up on an odd half-period" []
    (Plan.knobs_at h (Time.ms 2 + Time.us 120)).Plan.k_sw_port_down;
  Alcotest.(check (list int)) "trunk 5 cut at 2ms" [ 5 ]
    (Plan.knobs_at h (Time.ms 2)).Plan.k_trunk_down;
  Alcotest.(check (list int)) "trunk restored at 3ms" []
    (Plan.knobs_at h (Time.ms 3)).Plan.k_trunk_down;
  Alcotest.(check (list (pair int int))) "switch port restored after" []
    (Plan.knobs_at h (Time.ms 5)).Plan.k_sw_port_down

(* Property: any plan, across every fault dimension including the fabric
   ones, survives a textual round-trip — [to_string] output re-parses to
   a plan with the same text and the same boundary set. *)
let qcheck_plan_roundtrip =
  let open QCheck in
  let gen =
    let open Gen in
    let time lo hi = map Time.us (lo -- hi) in
    let ordered lo hi =
      pair (time lo hi) (time lo hi) >|= fun (a, b) ->
      if a < b then (a, b) else (b, a + Time.us 1)
    in
    let prob = 1 -- 1000 >|= fun k -> float_of_int k /. 1000. in
    let burst =
      pair (ordered 0 5000) prob >|= fun ((b_from, b_until), prob) ->
      { Plan.b_from; b_until; prob }
    in
    let window =
      ordered 0 5000 >|= fun (w_from, w_until) -> { Plan.w_from; w_until }
    in
    let chan_window = pair (0 -- 5) window in
    let storm =
      triple (0 -- 5) window (time 10 500) >|= fun (c, w, hp) -> (c, w, hp)
    in
    let bursts = list_size (0 -- 3) burst in
    let windows = list_size (0 -- 2) chan_window in
    let storms = list_size (0 -- 2) storm in
    (0 -- 10000) >>= fun seed ->
    bursts >>= fun drop ->
    bursts >>= fun corrupt ->
    bursts >>= fun corrupt_header ->
    bursts >>= fun duplicate ->
    windows >>= fun link_down ->
    windows >>= fun rx_squeeze ->
    bursts >>= fun irq_loss ->
    list_size (0 -- 2) (pair (0 -- 5) burst) >>= fun irq_loss_ch ->
    windows >>= fun free_starve ->
    storms >>= fun flap ->
    storms >>= fun port_flap ->
    bursts >>= fun trunk_loss ->
    list_size (0 -- 2) (quad (0 -- 5) (0 -- 5) window (time 10 500))
    >>= fun sw_flap ->
    windows >|= fun trunk_down ->
    {
      Plan.seed;
      drop;
      corrupt;
      corrupt_header;
      duplicate;
      link_down;
      rx_squeeze;
      irq_loss;
      irq_loss_ch;
      free_starve;
      flap;
      port_flap;
      trunk_loss;
      sw_flap;
      trunk_down;
    }
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200 ~name:"plan textual round-trip (all dimensions)"
       (make ~print:Plan.to_string gen)
       (fun p ->
         let s = Plan.to_string p in
         let p' = Plan.of_string s in
         String.equal s (Plan.to_string p')
         && Plan.boundaries p = Plan.boundaries p'))

(* The headline artifact: N seeds x randomized multi-dimension fault
   plans (drop + corruption + header mangles + duplication + a carrier
   outage + FIFO squeeze + lost interrupts) over the full host-to-host
   path. Per seed: goodput above zero, nothing delivered that is not
   byte-identical to a sent PDU, no residual reassembly, and the
   conservation/shadow/age invariants clean at quiescence. *)
let test_multi_seed_soak () =
  let seeds =
    match Sys.getenv_opt "OSIRIS_SOAK_SEEDS" with
    | Some s when String.trim s <> "" ->
        List.map int_of_string (String.split_on_char ',' (String.trim s))
    | _ -> [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  List.iter
    (fun seed ->
      let o = Fault_soak.run ~seed () in
      let ctx what =
        Printf.sprintf "seed %d %s (plan: %s)" seed what o.Fault_soak.plan
      in
      Alcotest.(check bool) (ctx "goodput > 0") true
        (o.Fault_soak.goodput_mbps > 0.0);
      Alcotest.(check int) (ctx "corrupted deliveries") 0
        o.Fault_soak.corrupted_delivered;
      Alcotest.(check int) (ctx "residual reassemblies") 0
        o.Fault_soak.residual_reassemblies;
      Alcotest.(check (list string)) (ctx "invariants") []
        o.Fault_soak.violations)
    seeds

let suite =
  [
    Alcotest.test_case "lossy link: no corruption, no wedge" `Quick
      test_lossy_link_no_corruption;
    Alcotest.test_case "dropped framing cell recovers via timeout" `Quick
      test_dropped_framing_cell_times_out;
    Alcotest.test_case "duplicate cells are harmless" `Quick
      test_duplicate_cells_harmless;
    Alcotest.test_case "header corruption never escapes the CRC" `Quick
      test_header_corruption_never_escapes;
    Alcotest.test_case "link down degrades gracefully" `Quick
      test_link_down_degrades_gracefully;
    Alcotest.test_case "per-ADC interrupt loss is channel-scoped" `Quick
      test_per_channel_irq_loss;
    Alcotest.test_case "per-ADC free-queue starvation is channel-scoped"
      `Quick test_per_channel_free_starvation;
    Alcotest.test_case "carrier flap storm converges" `Quick
      test_carrier_flap_storm;
    Alcotest.test_case "fault plans round-trip" `Quick test_plan_roundtrip;
    qcheck_plan_roundtrip;
    Alcotest.test_case "multi-seed fault soak" `Slow test_multi_seed_soak;
    Alcotest.test_case "jittery striping end-to-end" `Quick
      test_jittery_striping_end_to_end;
    Alcotest.test_case "concurrent streams stay isolated" `Quick
      test_concurrent_streams_isolation;
    Alcotest.test_case "udp over a corrupting link" `Quick
      test_udp_over_corrupting_link;
    Alcotest.test_case "whole-network determinism" `Quick
      test_network_determinism;
  ]
