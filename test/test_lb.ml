(* REPS balancer unit + property tests, and one end-to-end spray over a
   generated fat-tree.

   The unit tests pin the semantics the multipath experiment leans on:
   recycled entropy is preferred, freeze happens after enough clean
   acks, an ECE mark evicts one cached path without unfreezing, a loss
   purges the FIFO, and only a timeout resets everything. The property
   test drives a random operation sequence and requires the structural
   invariants to hold at every step. The e2e test sprays one reliable
   connection across a k=4 fat-tree and audits byte-exact delivery,
   spray bookkeeping and switch conservation. *)

open Osiris_sim
module Reps = Osiris_lb.Reps
module Spray = Osiris_lb.Spray
module Network = Osiris_core.Network
module Invariants = Osiris_core.Invariants
module Host = Osiris_core.Host
module Switch = Osiris_switch.Switch
module Sender = Osiris_transport.Sender
module Congestion = Osiris_experiments.Congestion

let no_invariant_errors t =
  Alcotest.(check (list string)) "reps invariants" [] (Reps.invariants t)

(* ------------------------------------------------------------------ *)
(* State size: the ISSUE's hard bound. *)

let test_state_bytes () =
  let t = Reps.create ~npaths:16 () in
  Alcotest.(check bool) "default state fits 25 bytes" true
    (Reps.state_bytes t <= 25);
  let small = Reps.create ~fifo:8 ~npaths:4 () in
  Alcotest.(check bool) "smaller FIFO, smaller state" true
    (Reps.state_bytes small < Reps.state_bytes t)

(* ------------------------------------------------------------------ *)
(* Pick-order semantics. *)

let test_recycle_preferred () =
  let t = Reps.create ~npaths:8 () in
  (* no entropy yet: explore *)
  let p0 = Reps.pick t in
  Alcotest.(check bool) "explore pick in range" true (p0 >= 0 && p0 < 8);
  Alcotest.(check int) "fresh pick counted" 1 (Reps.stats t).Reps.fresh;
  (* a clean ack's entropy is re-used verbatim, FIFO order *)
  Reps.on_ack t ~path:3 ~ece:false;
  Reps.on_ack t ~path:5 ~ece:false;
  Alcotest.(check int) "recycled first-in" 3 (Reps.pick t);
  Alcotest.(check int) "recycled second" 5 (Reps.pick t);
  Alcotest.(check int) "recycled picks counted" 2
    (Reps.stats t).Reps.recycled;
  no_invariant_errors t

let test_garbled_entropy_ignored () =
  let t = Reps.create ~npaths:4 () in
  Reps.on_ack t ~path:200 ~ece:false;
  Reps.on_ack t ~path:(-1) ~ece:false;
  Alcotest.(check int) "nothing buffered" 0 (Reps.fifo_len t);
  Reps.on_loss t ~path:77;
  no_invariant_errors t

let freeze t ~npaths =
  for i = 0 to (2 * npaths) - 1 do
    Reps.on_ack t ~path:(i mod npaths) ~ece:false
  done;
  (* drain the recycled entropy so later picks exercise the bitmap *)
  while Reps.fifo_len t > 0 do
    ignore (Reps.pick t)
  done

let test_freeze_then_cached_picks () =
  let np = 4 in
  let t = Reps.create ~npaths:np () in
  Alcotest.(check bool) "starts exploring" false (Reps.frozen t);
  freeze t ~npaths:np;
  Alcotest.(check bool) "frozen after 2*npaths clean acks" true
    (Reps.frozen t);
  let before = (Reps.stats t).Reps.cached_picks in
  let p = Reps.pick t in
  Alcotest.(check int) "empty-FIFO frozen pick is cached" (before + 1)
    (Reps.stats t).Reps.cached_picks;
  Alcotest.(check bool) "cached pick from the bitmap" true
    (Reps.cached_bitmap t land (1 lsl p) <> 0);
  no_invariant_errors t

let test_ece_evicts_but_stays_frozen () =
  let np = 4 in
  let t = Reps.create ~npaths:np () in
  freeze t ~npaths:np;
  let bit p = Reps.cached_bitmap t land (1 lsl p) <> 0 in
  Alcotest.(check bool) "path 2 cached before mark" true (bit 2);
  Reps.on_ack t ~path:2 ~ece:true;
  Alcotest.(check bool) "mark evicts the path" false (bit 2);
  Alcotest.(check bool) "mark does not unfreeze" true (Reps.frozen t);
  Alcotest.(check int) "mark recycles nothing" 0 (Reps.fifo_len t);
  (* picks now avoid the marked path while any cached path remains *)
  for _ = 1 to 32 do
    Alcotest.(check bool) "frozen picks avoid marked path" true
      (Reps.pick t <> 2)
  done;
  no_invariant_errors t

let test_loss_purges_fifo () =
  let t = Reps.create ~npaths:8 () in
  List.iter (fun p -> Reps.on_ack t ~path:p ~ece:false) [ 1; 2; 1; 3; 1 ];
  Alcotest.(check int) "five buffered" 5 (Reps.fifo_len t);
  Reps.on_loss t ~path:1;
  Alcotest.(check int) "loss purges that path's entropy" 2 (Reps.fifo_len t);
  Alcotest.(check int) "purge counted" 3 (Reps.stats t).Reps.purged;
  Alcotest.(check int) "survivors keep FIFO order" 2 (Reps.pick t);
  Alcotest.(check int) "survivors keep FIFO order (2)" 3 (Reps.pick t);
  Alcotest.(check bool) "cached bit cleared" true
    (Reps.cached_bitmap t land 0b10 = 0);
  no_invariant_errors t

let test_timeout_resets () =
  let np = 4 in
  let t = Reps.create ~npaths:np () in
  freeze t ~npaths:np;
  Reps.on_ack t ~path:0 ~ece:false;
  Reps.on_timeout t;
  Alcotest.(check int) "FIFO flushed" 0 (Reps.fifo_len t);
  Alcotest.(check int) "bitmap cleared" 0 (Reps.cached_bitmap t);
  Alcotest.(check bool) "back to explore" false (Reps.frozen t);
  let before = (Reps.stats t).Reps.fresh in
  ignore (Reps.pick t);
  Alcotest.(check int) "post-timeout pick is fresh" (before + 1)
    (Reps.stats t).Reps.fresh;
  no_invariant_errors t

(* ------------------------------------------------------------------ *)
(* Property: any operation sequence keeps the structural invariants and
   every pick in range. *)

type op = Pick | Ack of int * bool | Loss of int | Timeout

let op_print = function
  | Pick -> "pick"
  | Ack (p, e) -> Printf.sprintf "ack(%d,%b)" p e
  | Loss p -> Printf.sprintf "loss(%d)" p
  | Timeout -> "timeout"

let qcheck_op_sequence =
  let open QCheck in
  let gen =
    let open Gen in
    let path = -1 -- 20 in
    pair (1 -- 16)
      (list_size (0 -- 200)
         (frequency
            [
              (4, return Pick);
              (4, pair path bool >|= fun (p, e) -> Ack (p, e));
              (1, path >|= fun p -> Loss p);
              (1, return Timeout);
            ]))
  in
  let print (np, ops) =
    Printf.sprintf "npaths=%d [%s]" np
      (String.concat "; " (List.map op_print ops))
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200
       ~name:"random op sequence: invariants hold, picks in range"
       (make ~print gen)
       (fun (np, ops) ->
         let t = Reps.create ~fifo:8 ~npaths:np ~seed:np () in
         List.for_all
           (fun op ->
             (match op with
             | Pick ->
                 let p = Reps.pick t in
                 if p < 0 || p >= np then failwith "pick out of range"
             | Ack (p, e) -> Reps.on_ack t ~path:p ~ece:e
             | Loss p -> Reps.on_loss t ~path:p
             | Timeout -> Reps.on_timeout t);
             Reps.invariants t = [])
           ops))

(* ------------------------------------------------------------------ *)
(* End to end: one connection sprayed across a generated k=4 fat-tree
   (8 hosts, 20 switches, 4 equal-cost inter-pod paths). *)

let test_spray_fat_tree () =
  let eng, topo =
    Network.fat_tree ~k:4 ~hosts_per_edge:1
      ~machine:Congestion.small_machine ()
  in
  let sink = Buffer.create 1024 in
  let payload = Bytes.init 8192 (fun i -> Char.chr ((i * 31) land 0xff)) in
  let conn =
    Spray.connect topo ~config:Congestion.transport_config ~mode:Spray.Reps
      ~src:0 ~dst:2 ~deliver:(fun b -> Buffer.add_bytes sink b) ()
  in
  Alcotest.(check int) "inter-pod path set" 4 (Spray.npaths conn);
  Spray.send conn payload;
  Spray.close conn;
  let cap = Time.s 2 in
  let rec drive () =
    if Spray.state conn = Sender.Active && Engine.now eng < cap then begin
      Engine.run ~until:(Engine.now eng + Time.ms 5) eng;
      drive ()
    end
  in
  drive ();
  Engine.run ~until:(Engine.now eng + Time.ms 10) eng;
  Alcotest.(check bool) "connection finished" true
    (Spray.state conn = Sender.Finished);
  Alcotest.(check bool) "delivered byte-exact" true
    (Bytes.equal (Buffer.to_bytes sink) payload);
  (* the spray actually spread: more than one path carried data *)
  let used = ref 0 in
  for p = 0 to Spray.npaths conn - 1 do
    if Spray.sends conn p > 0 then incr used
  done;
  Alcotest.(check bool) "spray used several paths" true (!used >= 2);
  Alcotest.(check (list string)) "spray invariants" [] (Spray.invariants conn);
  (* every generated switch conserves cells *)
  let fabric = Network.fabric topo in
  Array.iteri
    (fun s sw ->
      let st = Switch.stats sw in
      Alcotest.(check (list string))
        (Printf.sprintf "conservation at %s"
           fabric.Osiris_topo.Builder.switch_names.(s))
        []
        (Invariants.balance ~what:"cells" ~total:st.Switch.cells_in
           ~parts:(Switch.conservation sw)))
    topo.Network.switches;
  (* hosts quiescent: buffers conserved, queues empty *)
  let host_errs =
    List.concat
      (List.init (Network.nhosts topo) (fun i ->
           let h = Network.host topo i in
           Invariants.check ~quiescent:true ~board:h.Host.board
             ~driver:h.Host.driver ()))
  in
  Alcotest.(check (list string)) "host invariants" [] host_errs

let suite =
  [
    Alcotest.test_case "state fits 25 bytes" `Quick test_state_bytes;
    Alcotest.test_case "recycled entropy preferred, FIFO order" `Quick
      test_recycle_preferred;
    Alcotest.test_case "garbled entropy ignored" `Quick
      test_garbled_entropy_ignored;
    Alcotest.test_case "freeze after clean acks; cached picks" `Quick
      test_freeze_then_cached_picks;
    Alcotest.test_case "ECE evicts one path, stays frozen" `Quick
      test_ece_evicts_but_stays_frozen;
    Alcotest.test_case "loss purges the FIFO" `Quick test_loss_purges_fifo;
    Alcotest.test_case "timeout resets to explore" `Quick test_timeout_resets;
    qcheck_op_sequence;
    Alcotest.test_case "spray across a k=4 fat-tree" `Quick
      test_spray_fat_tree;
  ]
