(* Smoke and shape tests for the experiment harness itself: cheap runs
   that pin the reproduced results' qualitative shape, so a regression in
   the model shows up in `dune runtest` and not only in the bench. *)

module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
open Osiris_experiments

let test_dma_bounds_exact () =
  let eng = Osiris_sim.Engine.create () in
  let bus =
    Osiris_bus.Turbochannel.create eng
      (Osiris_bus.Turbochannel.turbochannel_config
         Osiris_bus.Turbochannel.Shared_bus)
  in
  let chk label expect dir burst =
    Alcotest.(check (float 0.5)) label expect
      (Osiris_bus.Turbochannel.max_dma_mbps bus ~dir ~burst)
  in
  chk "367" 366.7 `Read 44;
  chk "463" 463.2 `Write 44;
  chk "503" 502.9 `Read 88;
  chk "587" 586.7 `Write 88

let test_latency_shape () =
  (* Cheap Table-1 shape checks on the DECstation. *)
  let rtt p s = Table1.rtt ~machine:Machine.ds5000_200 ~proto:p ~msg_size:s
      ~rounds:4 () in
  let atm1 = rtt Table1.Raw_atm 1 in
  let atm4k = rtt Table1.Raw_atm 4096 in
  let udp1 = rtt Table1.Udp_ip 1 in
  Alcotest.(check bool)
    (Printf.sprintf "ATM 1B in band (%.0f)" atm1)
    true
    (atm1 > 250.0 && atm1 < 450.0);
  Alcotest.(check bool) "grows with size" true (atm4k > atm1 +. 100.0);
  Alcotest.(check bool) "UDP/IP costs more" true (udp1 > atm1 +. 150.0)

let test_latency_machine_ordering () =
  let rtt m = Table1.rtt ~machine:m ~proto:Table1.Raw_atm ~msg_size:1
      ~rounds:4 () in
  Alcotest.(check bool) "Alpha ~2.3x faster" true
    (rtt Machine.ds5000_200 > 1.8 *. rtt Machine.dec3000_600)

let test_receive_side_shape () =
  let tput machine dma inval =
    Receive_side.throughput ~machine
      ~variant:
        { Receive_side.label = "t"; dma; invalidation = inval;
          checksum = false }
      ~msg_size:(16 * 1024) ~window_ms:12 ()
  in
  let ds_double = tput Machine.ds5000_200 Board.Double_cell Driver.Lazy in
  let ds_single = tput Machine.ds5000_200 Board.Single_cell Driver.Lazy in
  let ds_eager = tput Machine.ds5000_200 Board.Single_cell Driver.Eager in
  Alcotest.(check bool)
    (Printf.sprintf "double (%.0f) > single (%.0f)" ds_double ds_single)
    true (ds_double > ds_single);
  Alcotest.(check bool)
    (Printf.sprintf "single (%.0f) > eager invalidation (%.0f)" ds_single
       ds_eager)
    true
    (ds_single > ds_eager);
  Alcotest.(check bool) "plateaus in band" true
    (ds_double > 300.0 && ds_double < 440.0 && ds_eager > 180.0
     && ds_eager < 300.0)

let test_checksum_collapse () =
  let tput cs =
    Receive_side.throughput ~machine:Machine.ds5000_200
      ~variant:
        { Receive_side.label = "t"; dma = Board.Single_cell;
          invalidation = Driver.Lazy; checksum = cs }
      ~msg_size:(16 * 1024) ~window_ms:12 ()
  in
  let off = tput false and on_ = tput true in
  Alcotest.(check bool)
    (Printf.sprintf "CS collapses throughput (%.0f -> %.0f)" off on_)
    true
    (on_ < 120.0 && on_ > 40.0 && off > 2.5 *. on_)

let test_transmit_shape () =
  let t =
    Transmit_side.throughput ~machine:Machine.dec3000_600 ~checksum:false
      ~msg_size:(64 * 1024) ~window_ms:12 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "transmit plateau ~325 (%.0f)" t)
    true
    (t > 290.0 && t < 370.0)

let test_fragmentation_counts () =
  let naive =
    Ablation_fragmentation.run ~mtu:4096 ~aligned:false ~contiguous:false ()
  in
  let contig =
    Ablation_fragmentation.run ~mtu:(16 * 1024) ~aligned:true ~contiguous:true
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "naive explodes (%d bufs)"
       naive.Ablation_fragmentation.physical_buffers)
    true
    (naive.Ablation_fragmentation.physical_buffers >= 13);
  Alcotest.(check bool) "contiguous collapses" true
    (contig.Ablation_fragmentation.physical_buffers
     <= naive.Ablation_fragmentation.physical_buffers / 2)

let test_interrupt_coalescing_counts () =
  let pdus, irqs = Ablation_interrupts.run ~burst:32 ~spacing_us:0 () in
  Alcotest.(check int) "train delivered" 32 pdus;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced (%d irqs)" irqs)
    true (irqs <= 12);
  let pdus_s, irqs_s = Ablation_interrupts.run ~burst:8 ~spacing_us:2000 () in
  Alcotest.(check int) "spaced delivered" 8 pdus_s;
  Alcotest.(check int) "one each for latency" 8 irqs_s

let test_skew_strategies () =
  let r strategy skew_us =
    Ablation_skew.run ~strategy ~skew_us ~pdus:16 ()
  in
  let perlink = r (Osiris_atm.Sar.Per_link 4) 5 in
  Alcotest.(check int) "per-link survives skew" 16
    perlink.Ablation_skew.delivered;
  let inorder = r Osiris_atm.Sar.In_order 5 in
  Alcotest.(check int) "in-order never delivers under striping" 0
    inorder.Ablation_skew.delivered;
  let noskew = r (Osiris_atm.Sar.Per_link 4) 0 in
  Alcotest.(check bool) "combining collapses under skew" true
    (noskew.Ablation_skew.combined_fraction
     > 10.0 *. Float.max 0.01 perlink.Ablation_skew.combined_fraction)

let test_adc_parity () =
  let k = Ablation_adc.rtt_kernel ~msg_size:1 in
  let u = Ablation_adc.rtt_adc ~msg_size:1 in
  let v = Ablation_adc.rtt_user_via_kernel ~msg_size:1 in
  Alcotest.(check bool)
    (Printf.sprintf "ADC within margins of kernel (%.0f vs %.0f)" u k)
    true
    (abs_float (u -. k) < 0.05 *. k);
  Alcotest.(check bool) "traditional path much slower" true (v > k +. 100.0)

let test_priority_under_overload () =
  let alone = Ablation_priority.run ~overload:false () in
  let loaded = Ablation_priority.run ~overload:true () in
  Alcotest.(check bool)
    (Printf.sprintf "high keeps most throughput (%.0f -> %.0f)"
       alone.Ablation_priority.high_mbps loaded.Ablation_priority.high_mbps)
    true
    (loaded.Ablation_priority.high_mbps
     > 0.25 *. alone.Ablation_priority.high_mbps);
  Alcotest.(check bool) "board dropped the low flow" true
    (loaded.Ablation_priority.board_drops > 0)

let test_lazy_cache_mechanics () =
  let lazy_r = Ablation_lazy_cache.run ~invalidation:Driver.Lazy () in
  let eager_r = Ablation_lazy_cache.run ~invalidation:Driver.Eager () in
  Alcotest.(check bool) "lazy sees stale reads" true
    (lazy_r.Ablation_lazy_cache.stale_reads > 0);
  Alcotest.(check int) "lazy never delivers corrupt data" 0
    lazy_r.Ablation_lazy_cache.checksum_failures;
  Alcotest.(check int) "eager never sees stale data" 0
    eager_r.Ablation_lazy_cache.stale_reads

let test_ethernet_baseline () =
  let e = Ablation_ethernet.rtt_ethernet ~machine:Machine.ds5000_200
      ~msg_size:1 ~rounds:6 () in
  let o = Table1.rtt ~machine:Machine.ds5000_200 ~proto:Table1.Raw_atm
      ~msg_size:1 ~rounds:6 () in
  Alcotest.(check bool)
    (Printf.sprintf "OSIRIS (%.0f) a bit better than Ethernet (%.0f) at 1B"
       o e)
    true
    (o < e && e < 2.0 *. o);
  let e4k = Ablation_ethernet.rtt_ethernet ~machine:Machine.ds5000_200
      ~msg_size:4096 ~rounds:6 () in
  Alcotest.(check bool) "Ethernet collapses at size" true (e4k > 5.0 *. o)

let test_multiplexing_granularity () =
  let fine = Ablation_multiplexing.run ~mux:Osiris_board.Board.Cell_interleave
      ~bulk_pdu:(32 * 1024) () in
  let coarse = Ablation_multiplexing.run ~mux:Osiris_board.Board.Pdu_at_once
      ~bulk_pdu:(32 * 1024) () in
  Alcotest.(check bool)
    (Printf.sprintf "interleave (%.0f us) beats PDU-at-once (%.0f us)"
       fine.Ablation_multiplexing.small_rtt_us
       coarse.Ablation_multiplexing.small_rtt_us)
    true
    (fine.Ablation_multiplexing.small_rtt_us
     < 0.8 *. coarse.Ablation_multiplexing.small_rtt_us)

(* engine_speed smoke: a small budget through the full machinery — both
   backends must agree on every counter and neither may leak. *)
let test_engine_speed_backends_agree () =
  let w, h, violations =
    Engine_speed.run ~events:20_000 ~senders:2 ()
  in
  Alcotest.(check (list string)) "no violations" [] violations;
  Alcotest.(check bool) "wheel forwarded cells" true
    (w.Engine_speed.cells_forwarded > 0);
  Alcotest.(check int) "same cells on both backends"
    w.Engine_speed.cells_forwarded h.Engine_speed.cells_forwarded

(* The congestion sweep is the figure the bench publishes; a cheap run
   here pins (a) determinism — two runs from the same seed produce the
   identical outcome record, counters and all, which is what makes the
   bench numbers and the soak reproducible — and (b) the audit staying
   clean at a contended queue depth. *)
let test_congestion_deterministic () =
  let go () =
    Congestion.run ~senders:4 ~queue_cells:24 ~marking:true
      ~bytes_per_sender:4096 ~seed:5 ()
  in
  let a = go () and b = go () in
  Alcotest.(check (list string)) "no invariant violations" [] a.Congestion.violations;
  Alcotest.(check bool) "every stream byte-exact" true a.Congestion.byte_exact;
  Alcotest.(check int) "all connections finished" 4 a.Congestion.finished;
  Alcotest.(check bool) "same seed, identical outcome" true (a = b)

(* One small demux_scale point end to end: all flows land, nothing
   trips the oracles or conservation, and the probe counters show the
   hashed tables actually being exercised. *)
let test_demux_scale_smoke () =
  let p = Osiris_experiments.Demux_scale.run ~nvcs:128 () in
  (match p.Osiris_experiments.Demux_scale.violations with
  | [] -> ()
  | vs -> Alcotest.failf "violations: %s" (String.concat "; " vs));
  Alcotest.(check int) "delivered" 128
    p.Osiris_experiments.Demux_scale.delivered_pdus;
  let d = p.Osiris_experiments.Demux_scale.demux in
  Alcotest.(check bool) "demux lookups happened" true
    (d.Osiris_classify.Table.lookups > 0);
  Alcotest.(check bool) "probe histogram sane" true
    (d.Osiris_classify.Table.p99_probe >= 1
    && d.Osiris_classify.Table.p99_probe
       <= d.Osiris_classify.Table.max_probe)

let test_registry_complete () =
  let ids = Registry.ids () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " registered") true
        (List.mem required ids))
    [ "table1"; "figure2"; "figure3"; "figure4"; "dma-bounds" ];
  Alcotest.(check bool) "all ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids))

let suite =
  [
    Alcotest.test_case "2.5.1 exact bounds" `Quick test_dma_bounds_exact;
    Alcotest.test_case "table 1 shape" `Quick test_latency_shape;
    Alcotest.test_case "table 1 machine ordering" `Quick
      test_latency_machine_ordering;
    Alcotest.test_case "figure 2 shape" `Quick test_receive_side_shape;
    Alcotest.test_case "checksum collapse (80 Mbps)" `Quick
      test_checksum_collapse;
    Alcotest.test_case "figure 4 plateau" `Quick test_transmit_shape;
    Alcotest.test_case "2.2 fragmentation counts" `Quick
      test_fragmentation_counts;
    Alcotest.test_case "2.1.2 interrupt coalescing" `Quick
      test_interrupt_coalescing_counts;
    Alcotest.test_case "2.6 skew strategies" `Quick test_skew_strategies;
    Alcotest.test_case "3.2 ADC latency parity" `Quick test_adc_parity;
    Alcotest.test_case "3.1 priority under overload" `Quick
      test_priority_under_overload;
    Alcotest.test_case "2.3 lazy cache mechanics" `Quick
      test_lazy_cache_mechanics;
    Alcotest.test_case "4 ethernet baseline" `Quick test_ethernet_baseline;
    Alcotest.test_case "2.5.1 multiplexing granularity" `Quick
      test_multiplexing_granularity;
    Alcotest.test_case "engine_speed backends agree" `Quick
      test_engine_speed_backends_agree;
    Alcotest.test_case "congestion run deterministic" `Quick
      test_congestion_deterministic;
    Alcotest.test_case "registry sanity" `Quick test_registry_complete;
    Alcotest.test_case "demux_scale smoke" `Quick test_demux_scale_smoke;
  ]
