(* The classification table against a Hashtbl model: random operation
   interleavings must agree with the model and with the table's own
   oracle, the probe bound must never be exceeded, and the structural
   [check] must stay clean at every step. *)

module Table = Osiris_classify.Table
module Cost = Osiris_classify.Cost

let check_clean what t =
  match Table.check t with
  | [] -> ()
  | vs -> Alcotest.failf "%s: %s" what (String.concat "; " vs)

(* --- unit coverage ------------------------------------------------ *)

let test_basics () =
  let t = Table.create ~oracle:true ~dummy:(-1) 8 in
  Alcotest.(check int) "empty" 0 (Table.length t);
  Table.add t 7 70;
  Table.add t 9 90;
  Alcotest.(check (option int)) "find 7" (Some 70) (Table.find t 7);
  Alcotest.(check (option int)) "find 9" (Some 90) (Table.find t 9);
  Alcotest.(check (option int)) "miss" None (Table.find t 8);
  Table.add t 7 71;
  Alcotest.(check (option int)) "replace" (Some 71) (Table.find t 7);
  Alcotest.(check int) "length after replace" 2 (Table.length t);
  Alcotest.(check bool) "member before remove" true (Table.mem t 7);
  Table.remove t 7;
  Alcotest.(check bool) "member after remove" false (Table.mem t 7);
  Table.remove t 7;
  Alcotest.(check (option int)) "gone" None (Table.find t 7);
  Alcotest.(check (option int)) "survivor" (Some 90) (Table.find t 9);
  check_clean "basics" t

let test_negative_key_rejected () =
  let t = Table.create ~dummy:0 8 in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Classify.Table.add: negative key") (fun () ->
      Table.add t (-3) 1);
  Alcotest.(check (option int)) "negative find" None (Table.find t (-3));
  Alcotest.(check int) "negative find_slot" (-1) (Table.find_slot t (-3))

let test_growth_keeps_everything () =
  let t = Table.create ~oracle:true ~dummy:0 8 in
  for k = 0 to 4095 do
    Table.add t (k * 17) k
  done;
  Alcotest.(check int) "length" 4096 (Table.length t);
  Alcotest.(check bool) "capacity grew" true (Table.capacity t >= 4096);
  for k = 0 to 4095 do
    match Table.find t (k * 17) with
    | Some v -> Alcotest.(check int) "value" k v
    | None -> Alcotest.failf "key %d lost across growth" (k * 17)
  done;
  check_clean "growth" t

let test_find_slot_hot_path () =
  let t = Table.create ~dummy:"" 8 in
  Table.add t 42 "answer";
  let slot = Table.find_slot t 42 in
  Alcotest.(check bool) "hit slot" true (slot >= 0);
  Alcotest.(check string) "slot value" "answer" (Table.slot_value t slot);
  Alcotest.(check int) "slot key" 42 (Table.slot_key t slot);
  Alcotest.(check int) "miss slot" (-1) (Table.find_slot t 43);
  let s = Table.probe_stats t in
  Alcotest.(check int) "lookups recorded" 2 s.Table.lookups;
  Alcotest.(check bool) "probes counted" true (s.Table.probes >= 2);
  Table.reset_probe_stats t;
  Alcotest.(check int) "reset" 0 (Table.probe_stats t).Table.lookups

let test_fold_iter_resident () =
  let t = Table.create ~dummy:0 8 in
  List.iter (fun k -> Table.add t k (k * 2)) [ 1; 2; 3; 4; 5 ];
  let n = ref 0 in
  Table.iter (fun k v -> Alcotest.(check int) "iter" (k * 2) v; incr n) t;
  Alcotest.(check int) "iter count" 5 !n;
  let sum = Table.fold (fun k _ acc -> acc + k) t 0 in
  Alcotest.(check int) "fold keys" 15 sum;
  Alcotest.(check bool) "resident bytes" true (Table.resident_bytes t > 0)

(* --- qcheck: model equivalence ------------------------------------ *)

type op = Add of int * int | Remove of int | Find of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Add (k, v)) (int_bound 300) (int_bound 10_000));
        (2, map (fun k -> Remove k) (int_bound 300));
        (3, map (fun k -> Find k) (int_bound 300));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (k, v) -> Printf.sprintf "add %d=%d" k v
             | Remove k -> Printf.sprintf "del %d" k
             | Find k -> Printf.sprintf "find %d" k)
           ops))
    QCheck.Gen.(list_size (int_bound 400) op_gen)

let model_equivalence =
  QCheck.Test.make ~name:"classify: table = Hashtbl model under interleavings"
    ~count:200 ops_arb (fun ops ->
      let t = Table.create ~oracle:true ~dummy:(-1) 8 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun op ->
          (match op with
          | Add (k, v) ->
              Table.add t k v;
              Hashtbl.replace model k v
          | Remove k ->
              if Table.mem t k <> Hashtbl.mem model k then
                QCheck.Test.fail_reportf "mem %d disagreed with model" k;
              Table.remove t k;
              Hashtbl.remove model k
          | Find k ->
              if Table.find t k <> Hashtbl.find_opt model k then
                QCheck.Test.fail_reportf "find %d disagreed with model" k);
          match Table.check t with
          | [] -> ()
          | vs ->
              QCheck.Test.fail_reportf "check dirty: %s"
                (String.concat "; " vs))
        ops;
      Table.length t = Hashtbl.length model)

let probe_bound_holds =
  QCheck.Test.make ~name:"classify: probe bound never exceeded" ~count:100
    QCheck.(list_of_size Gen.(int_bound 2_000) (int_bound 1_000_000))
    (fun keys ->
      let t = Table.create ~probe_bound:8 ~dummy:0 8 in
      List.iteri (fun i k -> Table.add t k i) keys;
      List.iter (fun k -> ignore (Table.find_slot t k)) keys;
      let s = Table.probe_stats t in
      s.Table.max_probe <= Table.probe_bound t
      && s.Table.p99_probe <= s.Table.max_probe)

(* --- cost model --------------------------------------------------- *)

let test_cost_model () =
  (* One probe = one line fill: (13 + 1) cycles at 25 MHz = 560 ns. *)
  let p =
    Cost.of_cache ~name:"ds" ~cpu_hz:25_000_000 ~fill_overhead_cycles:13
      ~hit_cycles_per_word:1
  in
  Alcotest.(check (float 1e-6)) "access" 560.0 (Cost.access_ns p);
  Alcotest.(check (float 1e-6)) "two probes" 1120.0
    (Cost.lookup_ns p ~probes:2.0);
  Alcotest.(check string) "name" "ds" (Cost.name p);
  Alcotest.check_raises "bad hz" (Invalid_argument "Classify.Cost.of_cache: cpu_hz <= 0")
    (fun () ->
      ignore
        (Cost.of_cache ~name:"x" ~cpu_hz:0 ~fill_overhead_cycles:1
           ~hit_cycles_per_word:1))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "negative keys rejected" `Quick
      test_negative_key_rejected;
    Alcotest.test_case "growth keeps everything" `Quick
      test_growth_keeps_everything;
    Alcotest.test_case "find_slot hot path + stats" `Quick
      test_find_slot_hot_path;
    Alcotest.test_case "fold/iter/resident" `Quick test_fold_iter_resident;
    Alcotest.test_case "cost model" `Quick test_cost_model;
    QCheck_alcotest.to_alcotest model_equivalence;
    QCheck_alcotest.to_alcotest probe_bound_holds;
  ]
