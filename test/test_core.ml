(* Integration tests: two complete hosts exchanging traffic through their
   simulated OSIRIS adaptors. *)

open Osiris_sim
open Osiris_core
module Board = Osiris_board.Board
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Udp = Osiris_proto.Udp
module Ip = Osiris_proto.Ip
module Irq = Osiris_os.Irq

let raw_vci = 9

let test_udp_end_to_end_integrity () =
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  let received = ref [] in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      received := Msg.read_all msg :: !received;
      Msg.dispose msg);
  let payloads =
    List.map
      (fun (size, tag) -> Bytes.init size (fun i -> Char.chr ((i + tag) land 0xff)))
      [ (1, 1); (4096, 2); (16 * 1024, 3); (60_000, 4) ]
  in
  Process.spawn eng ~name:"tx" (fun () ->
      List.iter
        (fun p ->
          let m = Msg.alloc a.Host.vs ~len:(Bytes.length p) () in
          Msg.blit_into m ~off:0 ~src:p;
          Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7 m)
        payloads);
  Engine.run ~until:(Time.ms 100) eng;
  let got = List.rev !received in
  Alcotest.(check int) "all delivered" (List.length payloads) (List.length got);
  List.iter2
    (fun want have ->
      Alcotest.(check bool)
        (Printf.sprintf "%d bytes intact" (Bytes.length want))
        true (Bytes.equal want have))
    payloads got

let test_raw_atm_path () =
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let got = ref None in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      got := Some (Msg.read_all msg);
      Msg.dispose msg);
  let payload = Bytes.init 3000 (fun i -> Char.chr ((i * 3) land 0xff)) in
  Process.spawn eng ~name:"tx" (fun () ->
      let m = Msg.alloc a.Host.vs ~len:3000 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Driver.send a.Host.driver ~vci:raw_vci m);
  Engine.run ~until:(Time.ms 20) eng;
  match !got with
  | Some data -> Alcotest.(check bytes) "raw PDU intact" payload data
  | None -> Alcotest.fail "raw PDU not delivered"

let test_interrupt_coalescing_end_to_end () =
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let n = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      incr n;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 32 do
        Driver.send a.Host.driver ~vci:raw_vci (Msg.alloc a.Host.vs ~len:1024 ())
      done);
  Engine.run ~until:(Time.ms 100) eng;
  Alcotest.(check int) "all PDUs" 32 !n;
  Alcotest.(check bool)
    (Printf.sprintf "%d interrupts for 32 PDUs" (Irq.count b.Host.irq))
    true
    (Irq.count b.Host.irq < 16)

let test_tx_queue_backpressure () =
  (* More PDUs than the 64-entry transmit queue: the driver must block on
     full and resume via the half-empty interrupt, losing nothing. *)
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let n = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      incr n;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 150 do
        Driver.send a.Host.driver ~vci:raw_vci
          (Msg.alloc a.Host.vs ~len:8192 ())
      done);
  Engine.run ~until:(Time.s 1) eng;
  Alcotest.(check int) "no loss under backpressure" 150 !n;
  Alcotest.(check bool) "driver actually stalled" true
    ((Driver.stats a.Host.driver).Driver.tx_full_stalls > 0)

let test_tx_completion_reclaims () =
  (* After transmission completes (tail advance), the driver unwires and
     frees message memory — nothing stays wired forever. *)
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      Msg.dispose msg);
  let wired_before = Osiris_mem.Vspace.wired_pages a.Host.vs in
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 10 do
        Driver.send a.Host.driver ~vci:raw_vci
          (Msg.alloc a.Host.vs ~len:8192 ())
      done);
  Engine.run ~until:(Time.ms 100) eng;
  Alcotest.(check int) "wired pages back to baseline" wired_before
    (Osiris_mem.Vspace.wired_pages a.Host.vs)

let test_overload_recovers () =
  (* Offered load far beyond capacity: the board drops, the host survives,
     and when the storm ends the system still works. *)
  let eng = Engine.create () in
  let host =
    Host.create eng Machine.ds5000_200 ~addr:0x0a000002l Host.default_config
  in
  let payload = Bytes.make 4096 'x' in
  let dg = Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:false payload in
  let frags =
    List.concat_map
      (fun id ->
        Ip.fragment_images ~id Host.default_config.Host.ip ~page_size:4096
          ~src:0x0a000001l ~dst:0x0a000002l ~proto:Udp.protocol_number dg)
      [ 1; 2; 3; 4; 5 ]
  in
  Board.start_fictitious_source host.Host.board
    ~pdus:(List.map (fun f -> (Host.ip_vci host, f)) frags)
    ();
  Host.start host;
  let n = ref 0 in
  Host.new_udp_test_receiver host ~port:7 ~on_msg:(fun ~len:_ -> incr n);
  Engine.run ~until:(Time.ms 50) eng;
  let mid = !n in
  Alcotest.(check bool) "delivering under overload" true (mid > 0);
  Engine.run ~until:(Time.ms 100) eng;
  Alcotest.(check bool) "still delivering (no buffer leak)" true (!n > mid)

let test_spinlock_configuration_works () =
  let cfg =
    {
      Host.default_config with
      board =
        { Board.default_config with
          Board.locking = Osiris_board.Desc_queue.Spin_lock };
    }
  in
  let eng = Engine.create () in
  let a = Host.create eng Machine.ds5000_200 ~addr:0x0a000001l cfg in
  let b =
    Host.create eng Machine.ds5000_200 ~addr:0x0a000002l
      { cfg with seed = 43 }
  in
  ignore (Network.connect eng a b);
  let got = ref 0 in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      incr got;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 5 do
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
          (Msg.alloc a.Host.vs ~len:2000 ())
      done);
  Engine.run ~until:(Time.ms 50) eng;
  Alcotest.(check int) "spin-locked queues still correct" 5 !got

let test_link_corruption_dropped_not_delivered () =
  let link =
    { Osiris_link.Atm_link.default_config with
      Osiris_link.Atm_link.corrupt_prob = 0.002 }
  in
  let eng = Engine.create () in
  let a = Host.create eng Machine.ds5000_200 ~addr:0x0a000001l
      Host.default_config in
  let b = Host.create eng Machine.ds5000_200 ~addr:0x0a000002l
      { Host.default_config with seed = 43 } in
  ignore (Network.connect eng ~link a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let good = ref 0 in
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 5) land 0xff)) in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      (* Every delivered PDU must be intact: corrupted ones die at the CRC. *)
      if Bytes.equal (Msg.read_all msg) template then incr good
      else Alcotest.fail "corrupted PDU delivered";
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 30 do
        let m = Msg.alloc a.Host.vs ~len:8192 () in
        Msg.blit_into m ~off:0 ~src:template;
        Driver.send a.Host.driver ~vci:raw_vci m
      done);
  Engine.run ~until:(Time.ms 200) eng;
  let drops = (Driver.stats b.Host.driver).Driver.crc_drops in
  Alcotest.(check bool)
    (Printf.sprintf "some corrupted (%d dropped), some clean (%d)" drops !good)
    true
    (drops > 0 && !good > 0 && !good + drops = 30)

(* Randomized end-to-end integrity: any mix of message sizes arrives
   intact and in order, under any seed. *)
let e2e_random_integrity =
  QCheck.Test.make ~name:"end-to-end: random messages intact & ordered"
    ~count:8
    QCheck.(pair (int_range 0 1000) (list_of_size Gen.(1 -- 6) (int_range 1 40_000)))
    (fun (seed, sizes) ->
      let cfg = { Host.default_config with seed = 100 + seed } in
      let eng = Engine.create () in
      let a = Host.create eng Machine.ds5000_200 ~addr:0x0a000001l cfg in
      let b =
        Host.create eng Machine.ds5000_200 ~addr:0x0a000002l
          { cfg with seed = 200 + seed }
      in
      ignore (Network.connect eng a b);
      let got = ref [] in
      Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
          got := Msg.read_all msg :: !got;
          Msg.dispose msg);
      let payloads =
        List.mapi
          (fun i size ->
            Bytes.init size (fun j -> Char.chr ((j + (i * 17) + seed) land 0xff)))
          sizes
      in
      Process.spawn eng ~name:"tx" (fun () ->
          List.iter
            (fun p ->
              let m = Msg.alloc a.Host.vs ~len:(Bytes.length p) () in
              Msg.blit_into m ~off:0 ~src:p;
              Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7 m)
            payloads);
      Engine.run ~until:(Time.ms 200) eng;
      let got = List.rev !got in
      List.length got = List.length payloads
      && List.for_all2 Bytes.equal payloads got)

let test_snapshot () =
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg -> Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
        (Msg.alloc a.Host.vs ~len:4096 ()));
  Engine.run ~until:(Time.ms 10) eng;
  let snap = Snapshot.take ~name:"B" b in
  Alcotest.(check int) "snapshot sees the PDU" 1
    snap.Snapshot.board.Board.pdus_received;
  let rendered = Format.asprintf "%a" Snapshot.pp snap in
  Alcotest.(check bool) "renders" true (String.length rendered > 100)

let test_full_cache_swap_policy () =
  (* Eager_full must deliver correctly (like the other policies). *)
  let cfg = { Host.default_config with invalidation = Driver.Eager_full } in
  let eng = Engine.create () in
  let a = Host.create eng Machine.ds5000_200 ~addr:0x0a000001l cfg in
  let b = Host.create eng Machine.ds5000_200 ~addr:0x0a000002l
      { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  let got = ref None in
  let payload = Bytes.init 5000 (fun i -> Char.chr ((i * 11) land 0xff)) in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      got := Some (Msg.read_all msg);
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      let m = Msg.alloc a.Host.vs ~len:5000 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7 m);
  Engine.run ~until:(Time.ms 50) eng;
  (match !got with
  | Some data -> Alcotest.(check bytes) "intact under full swap" payload data
  | None -> Alcotest.fail "lost");
  Alcotest.(check bool) "cache did get flushed" true
    ((Osiris_cache.Data_cache.stats b.Host.cache)
       .Osiris_cache.Data_cache.invalidated_lines > 0)

let test_small_buffers_noncontiguous_pool () =
  (* Regression: with page-fragment buffers and [rx_buffer_size] smaller
     than a page, the buffer-count ratio rounded down to zero and the
     receive path wedged with an empty pool. *)
  let machine =
    { Machine.ds5000_200 with Machine.rx_buffer_size = 2048;
      rx_pool_buffers = 16 }
  in
  let cfg = { Host.default_config with Host.contiguous_buffers = false } in
  let eng = Engine.create () in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b =
    Host.create eng machine ~addr:0x0a000002l { cfg with Host.seed = 43 }
  in
  Alcotest.(check bool) "pool stocked despite sub-page rx_buffer_size" true
    (Driver.pool_available b.Host.driver > 0);
  ignore (Network.connect eng a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let got = ref None in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      got := Some (Msg.read_all msg);
      Msg.dispose msg);
  let payload = Bytes.init 6000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Process.spawn eng ~name:"tx" (fun () ->
      let m = Msg.alloc a.Host.vs ~len:6000 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Driver.send a.Host.driver ~vci:raw_vci m);
  Engine.run ~until:(Time.ms 50) eng;
  match !got with
  | Some data -> Alcotest.(check bytes) "delivered through fragments" payload data
  | None -> Alcotest.fail "receive path wedged (empty buffer pool)"

let test_long_descriptor_chains () =
  (* Regression for the receive thread's chain bookkeeping: a PDU spread
     over many small buffers (~25 descriptors each here) must reassemble
     intact, with the trailer read from the true last descriptor. *)
  let machine = { Machine.ds5000_200 with Machine.rx_buffer_size = 2048 } in
  let eng = Engine.create () in
  let a = Host.create eng machine ~addr:0x0a000001l Host.default_config in
  let b =
    Host.create eng machine ~addr:0x0a000002l
      { Host.default_config with Host.seed = 43 }
  in
  ignore (Network.connect eng a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let got = ref [] in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      got := Msg.read_all msg :: !got;
      Msg.dispose msg);
  let payloads =
    List.map
      (fun tag -> Bytes.init 50_000 (fun i -> Char.chr ((i * tag) land 0xff)))
      [ 3; 11 ]
  in
  Process.spawn eng ~name:"tx" (fun () ->
      List.iter
        (fun p ->
          let m = Msg.alloc a.Host.vs ~len:(Bytes.length p) () in
          Msg.blit_into m ~off:0 ~src:p;
          Driver.send a.Host.driver ~vci:raw_vci m;
          (* Pace the sends: with 2 KB buffers the receive processor has 8x
             the per-buffer work, and back-to-back 50 KB PDUs would overrun
             its cell FIFO — overload behavior, not what this test pins. *)
          Process.sleep eng (Time.ms 20))
        payloads);
  Engine.run ~until:(Time.s 1) eng;
  let got = List.rev !got in
  Alcotest.(check int) "both PDUs delivered" 2 (List.length got);
  List.iter2
    (fun want have ->
      Alcotest.(check bool) "long chain intact" true (Bytes.equal want have))
    payloads got

let test_machine_lookup () =
  Alcotest.(check bool) "by_name finds" true
    (Machine.by_name "dec 5000/200" <> None);
  Alcotest.(check bool) "unknown" true (Machine.by_name "vax" = None)

(* Bulk VC setup must be O(1) amortized: after the first circuit between
   a host pair, path discovery comes out of the topology's cache, so
   opening thousands of VCs costs thousands of table inserts — not
   thousands of graph traversals. Sys.time is a coarse guard here; the
   sharp assertion is the enumeration counter. *)
let test_bulk_vc_setup () =
  let _eng, topo = Network.star ~n:4 () in
  let recv = Network.host topo 0 in
  let baseline = Board.demux_vcs recv.Host.board in
  let t0 = Sys.time () in
  let n = 4096 in
  for i = 0 to n - 1 do
    let src = 1 + (i mod 3) in
    ignore (Network.open_vc topo ~src ~dst:0)
  done;
  let elapsed = Sys.time () -. t0 in
  let enums = Network.path_enumerations topo in
  if enums > 3 then
    Alcotest.failf "%d path enumerations for 3 (src,dst) pairs" enums;
  if elapsed > 5.0 then
    Alcotest.failf "opening %d VCs took %.1fs" n elapsed;
  (* Every VC is live at the receiving board. *)
  Alcotest.(check int) "receiver demux entries" n
    (Board.demux_vcs recv.Host.board - baseline)

let suite =
  [
    Alcotest.test_case "udp end-to-end integrity" `Quick
      test_udp_end_to_end_integrity;
    Alcotest.test_case "raw ATM path" `Quick test_raw_atm_path;
    Alcotest.test_case "interrupt coalescing end-to-end" `Quick
      test_interrupt_coalescing_end_to_end;
    Alcotest.test_case "transmit-queue backpressure" `Quick
      test_tx_queue_backpressure;
    Alcotest.test_case "transmit completion reclaims" `Quick
      test_tx_completion_reclaims;
    Alcotest.test_case "overload does not wedge the host" `Quick
      test_overload_recovers;
    Alcotest.test_case "spin-lock configuration" `Quick
      test_spinlock_configuration_works;
    Alcotest.test_case "corrupted cells never delivered" `Quick
      test_link_corruption_dropped_not_delivered;
    Alcotest.test_case "sub-page buffers stock the pool" `Quick
      test_small_buffers_noncontiguous_pool;
    Alcotest.test_case "long descriptor chains reassemble" `Quick
      test_long_descriptor_chains;
    Alcotest.test_case "machine profiles" `Quick test_machine_lookup;
    QCheck_alcotest.to_alcotest e2e_random_integrity;
    Alcotest.test_case "snapshot" `Quick test_snapshot;
    Alcotest.test_case "full-cache-swap policy" `Quick
      test_full_cache_swap_policy;
    Alcotest.test_case "bulk VC setup is O(1) amortized" `Quick
      test_bulk_vc_setup;
  ]
