(* Tests for the discrete-event engine and its process layer. *)

open Osiris_sim

let check = Alcotest.(check int)

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Engine.schedule eng ~delay:30 (record 3));
  ignore (Engine.schedule eng ~delay:10 (record 1));
  ignore (Engine.schedule eng ~delay:20 (record 2));
  Engine.run eng;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  check "clock at last event" 30 (Engine.now eng)

let test_engine_fifo_same_time () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:7 (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "same-instant FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:5 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_engine_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule eng ~delay:10 tick)
  in
  ignore (Engine.schedule eng ~delay:10 tick);
  Engine.run ~until:100 eng;
  check "bounded run" 10 !count;
  check "clock clamped to horizon" 100 (Engine.now eng)

let test_engine_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule eng ~delay:1 (fun () ->
           incr count;
           if !count = 3 then Engine.stop eng))
  done;
  Engine.run eng;
  check "stopped after third" 3 !count

let test_schedule_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:10 (fun () -> ()));
  ignore (Engine.step eng);
  Alcotest.check_raises "past time" (Invalid_argument
    "Engine.schedule_at: time 5 is in the past (now 10)")
    (fun () -> ignore (Engine.schedule_at eng ~time:5 (fun () -> ())))

let test_process_sleep () =
  let eng = Engine.create () in
  let log = ref [] in
  Process.spawn eng ~name:"p" (fun () ->
      log := Engine.now eng :: !log;
      Process.sleep eng 100;
      log := Engine.now eng :: !log;
      Process.sleep eng 50;
      log := Engine.now eng :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "sleep advances time" [ 0; 100; 150 ]
    (List.rev !log)

let test_process_exception_named () =
  let eng = Engine.create () in
  Process.spawn eng ~name:"boom" (fun () -> failwith "bang");
  Alcotest.check_raises "process failure surfaces"
    (Process.Process_failure ("boom", Failure "bang"))
    (fun () -> Engine.run eng)

let test_not_in_process () =
  let eng = Engine.create () in
  Alcotest.check_raises "sleep outside process" Process.Not_in_process
    (fun () -> Process.sleep eng 5)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng () in
  let got = ref [] in
  Process.spawn eng ~name:"rx" (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Process.spawn eng ~name:"tx" (fun () ->
      List.iter (fun v -> Mailbox.send mb v) [ 1; 2; 3 ]);
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_capacity_blocks () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng ~capacity:2 () in
  let sent = ref 0 in
  Process.spawn eng ~name:"tx" (fun () ->
      for i = 1 to 4 do
        Mailbox.send mb i;
        sent := i
      done);
  Process.spawn eng ~name:"rx" (fun () ->
      Process.sleep eng 100;
      ignore (Mailbox.recv mb);
      Process.sleep eng 100;
      ignore (Mailbox.recv mb));
  Engine.run ~until:50 eng;
  check "sender blocked at capacity" 2 !sent;
  Engine.run ~until:250 eng;
  check "sender progressed per receive" 4 !sent

let test_mailbox_try_ops () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng ~capacity:1 () in
  Alcotest.(check bool) "send into empty" true (Mailbox.try_send mb 1);
  Alcotest.(check bool) "send into full" false (Mailbox.try_send mb 2);
  Alcotest.(check (option int)) "recv" (Some 1) (Mailbox.try_recv mb);
  Alcotest.(check (option int)) "recv empty" None (Mailbox.try_recv mb)

let test_resource_mutual_exclusion () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  let active = ref 0 and max_active = ref 0 in
  for _ = 1 to 5 do
    Process.spawn eng ~name:"u" (fun () ->
        Resource.acquire res;
        incr active;
        if !active > !max_active then max_active := !active;
        Process.sleep eng 10;
        decr active;
        Resource.release res)
  done;
  Engine.run eng;
  check "never concurrent" 1 !max_active;
  check "all served, serialized" 50 (Engine.now eng)

let test_resource_priority () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  let order = ref [] in
  Process.spawn eng ~name:"holder" (fun () ->
      Resource.acquire res;
      Process.sleep eng 100;
      Resource.release res);
  Process.spawn eng ~name:"low" (fun () ->
      Process.sleep eng 1;
      Resource.acquire ~priority:10 res;
      order := "low" :: !order;
      Resource.release res);
  Process.spawn eng ~name:"high" (fun () ->
      Process.sleep eng 2;
      Resource.acquire ~priority:0 res;
      order := "high" :: !order;
      Resource.release res);
  Engine.run eng;
  Alcotest.(check (list string)) "priority served first" [ "high"; "low" ]
    (List.rev !order)

let test_resource_utilization () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  Process.spawn eng ~name:"u" (fun () ->
      Resource.use res ~duration:40;
      Process.sleep eng 60;
      Resource.use res ~duration:20);
  Engine.run eng;
  let st = Resource.stats res in
  check "busy time" 60 st.Resource.busy_time;
  check "acquisitions" 2 st.Resource.acquisitions

let test_signal_broadcast () =
  let eng = Engine.create () in
  let s = Signal.create eng in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Process.spawn eng ~name:"w" (fun () ->
        Signal.wait s;
        incr woken)
  done;
  Process.spawn eng ~name:"b" (fun () ->
      Process.sleep eng 10;
      Signal.broadcast s);
  Engine.run eng;
  check "all woken" 3 !woken

let test_determinism () =
  let run () =
    let eng = Engine.create () in
    let trace = Buffer.create 64 in
    let mb = Mailbox.create eng ~capacity:3 () in
    for p = 1 to 3 do
      Process.spawn eng ~name:"p" (fun () ->
          for i = 1 to 5 do
            Mailbox.send mb ((p * 10) + i);
            Process.sleep eng p
          done)
    done;
    Process.spawn eng ~name:"c" (fun () ->
        for _ = 1 to 15 do
          Buffer.add_string trace (string_of_int (Mailbox.recv mb));
          Buffer.add_char trace ' ';
          Process.sleep eng 2
        done);
    Engine.run eng;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Engine clock/accounting regressions (each failed before the fix).  *)

let test_until_advances_when_drained () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:10 (fun () -> ()));
  Engine.run ~until:100 eng;
  check "clock reaches the horizon after the queue drains" 100
    (Engine.now eng);
  (* And repeated bounded runs over an empty queue stay monotonic. *)
  Engine.run ~until:200 eng;
  check "second bounded run" 200 (Engine.now eng)

let test_max_events_counts_live_only () =
  let eng = Engine.create () in
  let fired = ref [] in
  let hs =
    List.init 6 (fun i ->
        Engine.schedule eng ~delay:(10 * (i + 1)) (fun () ->
            fired := i :: !fired))
  in
  (* Cancel events 0, 2 and 4: a budget of 2 must still buy two live
     dispatches, not be eaten by popped corpses. *)
  List.iteri (fun i h -> if i mod 2 = 0 then Engine.cancel h) hs;
  Engine.run ~max_events:2 eng;
  Alcotest.(check (list int)) "budget buys two live dispatches" [ 1; 3 ]
    (List.rev !fired);
  check "live dispatch counter" 2 (Engine.events_dispatched eng);
  Engine.run eng;
  Alcotest.(check (list int)) "remaining live event runs" [ 1; 3; 5 ]
    (List.rev !fired)

let test_until_budget_does_not_skip_pending () =
  let eng = Engine.create () in
  let times = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.schedule eng ~delay:(10 * i) (fun () ->
           times := Engine.now eng :: !times))
  done;
  (* The budget stops the run with events still pending inside the
     horizon: the clock must hold at the last dispatch, not jump to the
     horizon and then run backwards when those events fire later. *)
  Engine.run ~until:100 ~max_events:1 eng;
  check "clock holds with pending events inside the horizon" 10
    (Engine.now eng);
  Engine.run ~until:100 eng;
  Alcotest.(check (list int)) "later events fire at their own times"
    [ 10; 20; 30 ] (List.rev !times);
  check "horizon reached once the queue is clear" 100 (Engine.now eng)

let test_reschedule_periodic () =
  let eng = Engine.create () in
  let n = ref 0 in
  let h = ref None in
  let fire () =
    incr n;
    if !n < 5 then Engine.reschedule eng ~delay:10 (Option.get !h)
  in
  h := Some (Engine.schedule eng ~delay:10 fire);
  Engine.run eng;
  check "periodic timer fires via one reused handle" 5 !n;
  check "clock tracks the period" 50 (Engine.now eng)

let test_reschedule_queued_rejected () =
  let eng = Engine.create () in
  let h = Engine.schedule eng ~delay:10 (fun () -> ()) in
  Alcotest.check_raises "still queued"
    (Invalid_argument "Engine.reschedule_at: handle is still queued")
    (fun () -> Engine.reschedule eng ~delay:5 h)

let test_reschedule_after_cancel () =
  let eng = Engine.create () in
  let fired = ref 0 in
  let h = Engine.schedule eng ~delay:5 (fun () -> incr fired) in
  Engine.cancel h;
  Engine.run eng;
  check "cancelled" 0 !fired;
  Engine.reschedule eng ~delay:5 h;
  Engine.run eng;
  check "re-armed handle is live again" 1 !fired

(* ------------------------------------------------------------------ *)
(* Space-leak regressions: popped entries must not pin their values.  *)

(* Build outside the caller's frame so no stack root keeps [v] alive. *)
let[@inline never] weak_after_pop add_pop =
  let v = Bytes.make 64 'x' in
  let w = Weak.create 1 in
  Weak.set w 0 (Some v);
  add_pop v;
  w

let test_heap_releases_popped_values () =
  let h = Heap.create () in
  let w =
    weak_after_pop (fun v ->
        Heap.add h ~key:1 ~seq:0 v;
        match Heap.pop_min h with
        | Some (1, 0, _) -> ()
        | _ -> Alcotest.fail "heap pop mismatch")
  in
  Gc.full_major ();
  Alcotest.(check bool) "popped heap value collected (heap still alive)"
    true
    (Weak.get w 0 = None)

let test_wheel_releases_popped_values () =
  let wh = Wheel.create ~dummy:Bytes.empty in
  let w =
    weak_after_pop (fun v ->
        Wheel.add wh ~key:1 ~seq:0 v;
        match Wheel.pop_min wh with
        | Some (1, 0, _) -> ()
        | _ -> Alcotest.fail "wheel pop mismatch")
  in
  Gc.full_major ();
  Alcotest.(check bool) "popped wheel value collected (wheel still alive)"
    true
    (Weak.get w 0 = None)

(* ------------------------------------------------------------------ *)
(* Timer wheel unit behaviour. *)

let test_wheel_cascade () =
  let wh = Wheel.create ~dummy:(-1) in
  (* Keys spanning many levels, including same-key FIFO runs. *)
  let keys = [ 0; 5; 5; 31; 32; 1_000; 33_554_432; 1_000_000_000; 7 ] in
  List.iteri (fun seq k -> Wheel.add wh ~key:k ~seq seq) keys;
  Alcotest.(check (option int)) "peek" (Some 0) (Wheel.peek_key wh);
  let popped = ref [] in
  let rec drain () =
    match Wheel.pop_min wh with
    | None -> ()
    | Some (k, s, v) ->
        Alcotest.(check int) "value is its own seq" s v;
        popped := (k, s) :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check (list (pair int int)))
    "keys ascend, ties in seq order"
    [ (0, 0); (5, 1); (5, 2); (7, 8); (31, 3); (32, 4); (1_000, 5);
      (33_554_432, 6); (1_000_000_000, 7) ]
    (List.rev !popped)

let test_wheel_floor_rejects_past () =
  let wh = Wheel.create ~dummy:0 in
  Wheel.add wh ~key:100 ~seq:0 0;
  ignore (Wheel.pop_min wh);
  check "floor follows pops" 100 (Wheel.floor wh);
  Alcotest.check_raises "below the floor"
    (Invalid_argument "Wheel.add: key 99 below the pop floor 100")
    (fun () -> Wheel.add wh ~key:99 ~seq:1 0)

(* ------------------------------------------------------------------ *)
(* Scheduler vs naive model: random add/pop sequences against a sorted
   association list, identical for both backends. *)

let scheduler_model_prop name add pop peek fresh =
  QCheck.Test.make ~name ~count:200
    QCheck.(list (pair (int_bound 4) (int_bound 1000)))
    (fun ops ->
      let q = fresh () in
      let model = ref [] in
      let seq = ref 0 and floor = ref 0 in
      let fail = ref None in
      let insert e l =
        let le (k, s) (k', s') = k < k' || (k = k' && s <= s') in
        let rec go = function
          | [] -> [ e ]
          | x :: tl -> if le x e then x :: go tl else e :: x :: tl
        in
        go l
      in
      List.iter
        (fun (op, d) ->
          (if op = 0 then
             match (pop q, !model) with
             | Some (k, s, ()), (mk, ms) :: tl when k = mk && s = ms ->
                 model := tl;
                 floor := max !floor k
             | None, [] -> ()
             | _ -> fail := Some "pop diverged from model"
           else begin
             let key = !floor + d in
             add q ~key ~seq:!seq ();
             model := insert (key, !seq) !model;
             incr seq
           end);
          let want = match !model with [] -> None | (k, _) :: _ -> Some k in
          if peek q <> want then fail := Some "peek diverged from model")
        ops;
      let rec drain () =
        match (pop q, !model) with
        | None, [] -> ()
        | Some (k, s, ()), (mk, ms) :: tl when k = mk && s = ms ->
            model := tl;
            drain ()
        | _ -> fail := Some "drain diverged from model"
      in
      drain ();
      match !fail with None -> true | Some m -> QCheck.Test.fail_report m)

let wheel_model_prop =
  scheduler_model_prop "wheel matches sorted-list model"
    (fun q ~key ~seq v -> Wheel.add q ~key ~seq v)
    Wheel.pop_min Wheel.peek_key
    (fun () -> Wheel.create ~dummy:())

let heap_model_prop =
  scheduler_model_prop "heap matches sorted-list model"
    (fun q ~key ~seq v -> Heap.add q ~key ~seq v)
    Heap.pop_min Heap.peek_key
    (fun () -> Heap.create ())

(* ------------------------------------------------------------------ *)
(* Differential dispatch order: the same seeded workload must dispatch
   event for event identically on both backends. The workload draws its
   delays, cancellations and fan-out from an RNG consumed inside the
   callbacks, so the streams only stay aligned if every dispatch (and
   every bounded-run clock adjustment) matches exactly. *)

let dispatch_trace ?chooser backend =
  let eng = Engine.create ~backend () in
  (match chooser with
  | None -> ()
  | Some seed ->
      let crng = Osiris_util.Rng.create ~seed in
      Engine.set_chooser eng
        (Some (fun ~now:_ ~count -> Osiris_util.Rng.int crng count)));
  let rng = Osiris_util.Rng.create ~seed:42 in
  let buf = Buffer.create 4096 in
  let count = ref 0 in
  let cancellable = ref [] in
  let rec spawn_event () =
    if !count < 2500 then begin
      incr count;
      let id = !count in
      let d =
        match Osiris_util.Rng.int rng 5 with
        | 0 | 1 -> 0
        | 2 -> Osiris_util.Rng.int rng 50
        | 3 -> Osiris_util.Rng.int rng 5_000
        | _ -> Osiris_util.Rng.int rng 500_000
      in
      let h =
        Engine.schedule eng ~delay:d (fun () ->
            Buffer.add_string buf
              (Printf.sprintf "%d@%d;" id (Engine.now eng));
            if Osiris_util.Rng.int rng 3 > 0 then spawn_event ();
            if Osiris_util.Rng.int rng 4 = 0 then spawn_event ())
      in
      if Osiris_util.Rng.int rng 5 = 0 then
        cancellable := h :: !cancellable;
      if Osiris_util.Rng.int rng 7 = 0 then
        match !cancellable with
        | h :: tl ->
            Engine.cancel h;
            cancellable := tl
        | [] -> ()
    end
  in
  for _ = 1 to 40 do
    spawn_event ()
  done;
  (* Mixed bounded and budgeted segments exercise the clock-adjustment
     paths, then an unbounded run drains the rest. *)
  Engine.run ~until:200_000 eng;
  Buffer.add_string buf (Printf.sprintf "|u:%d|" (Engine.now eng));
  Engine.run ~max_events:500 eng;
  Buffer.add_string buf (Printf.sprintf "|m:%d|" (Engine.now eng));
  Engine.run eng;
  Buffer.add_string buf
    (Printf.sprintf "|end:%d disp:%d|" (Engine.now eng)
       (Engine.events_dispatched eng));
  Buffer.contents buf

let test_differential_dispatch () =
  Alcotest.(check string) "wheel and heap dispatch identically"
    (dispatch_trace Engine.Binary_heap)
    (dispatch_trace Engine.Timer_wheel)

let test_differential_dispatch_chooser () =
  Alcotest.(check string)
    "wheel and heap agree under a randomized chooser"
    (dispatch_trace ~chooser:11 Engine.Binary_heap)
    (dispatch_trace ~chooser:11 Engine.Timer_wheel)

(* Heap property: popping returns keys in nondecreasing order. *)
let heap_prop =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (k, v) -> Heap.add h ~key:k ~seq:i v) entries;
      let rec drain last acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _, v) ->
            if k < last then raise Exit;
            drain k (v :: acc)
      in
      let popped = try drain min_int [] with Exit -> [] in
      List.length popped = List.length entries)

let suite =
  [
    Alcotest.test_case "engine: timestamp order" `Quick test_engine_ordering;
    Alcotest.test_case "engine: same-instant FIFO" `Quick
      test_engine_fifo_same_time;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: bounded run" `Quick test_engine_until;
    Alcotest.test_case "engine: stop" `Quick test_engine_stop;
    Alcotest.test_case "engine: no scheduling in the past" `Quick
      test_schedule_past_rejected;
    Alcotest.test_case "process: sleep" `Quick test_process_sleep;
    Alcotest.test_case "process: named failure" `Quick
      test_process_exception_named;
    Alcotest.test_case "process: blocking outside process" `Quick
      test_not_in_process;
    Alcotest.test_case "mailbox: FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox: capacity blocks sender" `Quick
      test_mailbox_capacity_blocks;
    Alcotest.test_case "mailbox: try operations" `Quick test_mailbox_try_ops;
    Alcotest.test_case "resource: mutual exclusion" `Quick
      test_resource_mutual_exclusion;
    Alcotest.test_case "resource: priority" `Quick test_resource_priority;
    Alcotest.test_case "resource: utilization stats" `Quick
      test_resource_utilization;
    Alcotest.test_case "signal: broadcast wakes all" `Quick
      test_signal_broadcast;
    Alcotest.test_case "whole-sim determinism" `Quick test_determinism;
    Alcotest.test_case "engine: until advances drained clock" `Quick
      test_until_advances_when_drained;
    Alcotest.test_case "engine: max_events counts live only" `Quick
      test_max_events_counts_live_only;
    Alcotest.test_case "engine: budget never skips pending time" `Quick
      test_until_budget_does_not_skip_pending;
    Alcotest.test_case "engine: reschedule reuses handle" `Quick
      test_reschedule_periodic;
    Alcotest.test_case "engine: reschedule of queued handle rejected" `Quick
      test_reschedule_queued_rejected;
    Alcotest.test_case "engine: reschedule revives cancelled handle" `Quick
      test_reschedule_after_cancel;
    Alcotest.test_case "heap: popped values are released" `Quick
      test_heap_releases_popped_values;
    Alcotest.test_case "wheel: popped values are released" `Quick
      test_wheel_releases_popped_values;
    Alcotest.test_case "wheel: multi-level cascade order" `Quick
      test_wheel_cascade;
    Alcotest.test_case "wheel: floor rejects past keys" `Quick
      test_wheel_floor_rejects_past;
    Alcotest.test_case "differential: wheel vs heap dispatch" `Quick
      test_differential_dispatch;
    Alcotest.test_case "differential: wheel vs heap with chooser" `Quick
      test_differential_dispatch_chooser;
    QCheck_alcotest.to_alcotest heap_prop;
    QCheck_alcotest.to_alcotest wheel_model_prop;
    QCheck_alcotest.to_alcotest heap_model_prop;
  ]
